//! The cluster session: one handle owning ingest → index → query → sweep →
//! streaming-update as a single lifecycle.
//!
//! A [`ClusterSession`] erases the compile-time dimension the pipelines
//! underneath are monomorphized on: construction packs the validated
//! [`PointCloud`] into `Point<D>`s through a macro-generated jump table
//! (one arm per supported dimension, 2..=8) and stores the resulting state
//! behind an object-safe trait. Everything after that — exact queries,
//! batched sweeps, streaming updates — is one virtual call deep, and the
//! heavy loops below it stay fully monomorphized.
//!
//! The session's two modes mirror the engine/stream split it unifies:
//!
//! * **Indexed** (the default): an engine `Snapshot` serves
//!   [`ClusterSession::cluster`] and [`ClusterSession::sweep`] with
//!   LRU-cached phase state.
//! * **Streaming**: [`ClusterSession::updates`] converts the snapshot into
//!   a `StreamingClusterer` (reusing the snapshot's cached spatial index
//!   when one matches) and hands back an [`UpdateHandle`]. While the handle
//!   lives, the borrow checker statically prevents queries; dropping (or
//!   [`UpdateHandle::finish`]ing) it freezes the live set back into a
//!   fresh snapshot, and sweep service resumes on the updated points.

use crate::cloud::PointCloud;
use crate::error::Error;
use crate::labels::Labels;
use dbscan_durable::{DurableClusterer, DurableOptions, RealStorage, Storage};
use dbscan_engine::{CacheStats, Engine, QueryStats, Snapshot};
use dbscan_shard::{shard_cluster_on_index, ShardConfig, ShardStats};
use dbscan_stream::{IntoStreaming, StreamingClusterer, UpdateBatch, UpdateStats};
use geom::{points_from_flat, Point};
use pardbscan::pipeline::SpatialIndex;
use pardbscan::{CellMethod, DbscanParams, SweepGrid, VariantConfig};
use spatial::ShardAssignment;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configures and opens [`ClusterSession`]s.
///
/// The knobs mirror the engine's: how many spatial indexes (distinct ε
/// values, roughly) and core sets (distinct `(ε, minPts)` pairs) the
/// session caches between queries. The same configuration is reapplied
/// when a streaming handle freezes back into sweep mode.
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    engine: Engine,
    durable: Option<(PathBuf, DurableOptions)>,
    shard: Option<ShardConfig>,
}

impl SessionBuilder {
    /// A builder with the engine's default cache capacities.
    pub fn new() -> Self {
        SessionBuilder::default()
    }

    /// Sets how many spatial indexes the session keeps cached.
    pub fn partition_cache_capacity(mut self, capacity: usize) -> Self {
        self.engine = self.engine.partition_cache_capacity(capacity);
        self
    }

    /// Sets how many core sets the session keeps cached.
    pub fn core_cache_capacity(mut self, capacity: usize) -> Self {
        self.engine = self.engine.core_cache_capacity(capacity);
        self
    }

    /// Attaches durability: the session's point set is persisted under
    /// `dir` (a snapshot at ingest and after every streaming episode), and
    /// every [`ClusterSession::updates`] episode write-ahead logs its
    /// batches per `options` before applying them. Reopen later with
    /// [`ClusterSession::open_durable`].
    pub fn durable(mut self, dir: impl AsRef<Path>, options: DurableOptions) -> Self {
        self.durable = Some((dir.as_ref().to_path_buf(), options));
        self
    }

    /// Runs [`ClusterSession::cluster`] through the cell-graph-sharded path
    /// of the `dbscan-shard` crate: the grid cells are partitioned across
    /// `config.num_shards` workers, MarkCore and the intra-shard cell graph
    /// run locally per shard, and only boundary-cell edges are merged at a
    /// coordinator. Labels are byte-identical to the unsharded engine; the
    /// merge phase appears as its own phase in
    /// [`ClusterSession::explain_last`].
    ///
    /// The sharded path covers the default exact variant;
    /// [`ClusterSession::query`] with an explicit variant and sweeps keep
    /// using the engine snapshot (and its caches) directly.
    pub fn shard(mut self, config: ShardConfig) -> Self {
        self.shard = Some(config);
        self
    }

    /// Ingests a validated point cloud and opens the session. Fails with
    /// [`Error::UnsupportedDimension`] when the cloud's dimensionality is
    /// outside 2..=8. With [`SessionBuilder::durable`] configured, also
    /// (re)initializes the store directory with a snapshot of the cloud.
    pub fn ingest(self, cloud: PointCloud) -> Result<ClusterSession, Error> {
        let dim = cloud.dim();
        let inner = open_session(self.engine, &cloud, self.durable)?;
        Ok(ClusterSession {
            dim,
            inner,
            shard: self.shard,
            last_explain: Mutex::new(None),
        })
    }

    /// Opens the session persisted in the durable store at `dir`: recovers
    /// the live point set (newest snapshot plus WAL replay), checkpoints so
    /// the next open needs no replay, and serves it in indexed mode. The
    /// dimensionality is read from the store's headers.
    pub fn open_durable(
        self,
        dir: impl AsRef<Path>,
        options: DurableOptions,
    ) -> Result<ClusterSession, Error> {
        let dir = dir.as_ref();
        let storage = RealStorage::shared();
        let dim = dbscan_durable::store_dim(&storage, dir)? as usize;
        let inner = open_durable_session(self.engine, storage, dir, options, dim)?;
        Ok(ClusterSession {
            dim,
            inner,
            shard: self.shard,
            last_explain: Mutex::new(None),
        })
    }
}

/// Builds the EXPLAIN phase list of one query from its stats: a cache hit
/// reports the phase as skipped by the generation whose artifact served it,
/// a miss reports the phase's measured duration. (ClusterCore and
/// ClusterBorder always run.)
fn phases_from_query(stats: &QueryStats) -> Vec<obs::PhaseExecution> {
    vec![
        if stats.partition_cache_hit {
            obs::PhaseExecution::skipped(obs::phase::PARTITION, stats.index_generation)
        } else {
            obs::PhaseExecution::ran(obs::phase::PARTITION, stats.partition_time)
        },
        if stats.core_cache_hit {
            // The core cache is keyed on (index generation, minPts), so the
            // index generation identifies the reused artifact here too.
            obs::PhaseExecution::skipped(obs::phase::MARK_CORE, stats.index_generation)
        } else {
            obs::PhaseExecution::ran(obs::phase::MARK_CORE, stats.mark_core_time)
        },
        obs::PhaseExecution::ran(obs::phase::CLUSTER_CORE, stats.cluster_core_time),
        obs::PhaseExecution::ran(obs::phase::CLUSTER_BORDER, stats.cluster_border_time),
    ]
}

/// The EXPLAIN phase list of one sharded cluster run. MarkCore and the
/// local connect report one run per shard; the merge phase appears under
/// its own [`obs::phase::SHARD_MERGE`] name. A reused cached spatial index
/// shows the partition as skipped by that index's generation.
fn phases_from_shard(
    stats: &ShardStats,
    index_generation: Option<u64>,
) -> Vec<obs::PhaseExecution> {
    let per_shard = |phase: &'static str, duration: Duration| obs::PhaseExecution {
        phase,
        runs: stats.num_shards,
        skips: 0,
        skipped_by_generation: None,
        duration,
    };
    vec![
        match index_generation {
            Some(generation) => obs::PhaseExecution::skipped(obs::phase::PARTITION, generation),
            None => obs::PhaseExecution::ran(obs::phase::PARTITION, stats.partition_time),
        },
        per_shard(obs::phase::MARK_CORE, stats.mark_core_time),
        per_shard(obs::phase::SHARD_LOCAL, stats.local_connect_time),
        obs::PhaseExecution::ran(obs::phase::SHARD_MERGE, stats.merge_time),
        obs::PhaseExecution::ran(obs::phase::CLUSTER_BORDER, stats.border_time),
    ]
}

/// Aggregates the per-cell phase outcomes of a sweep into one run/skip
/// tally per phase.
fn phases_from_sweep(cells: &[SweepCell]) -> Vec<obs::PhaseExecution> {
    let mut out: Vec<obs::PhaseExecution> = [
        obs::phase::PARTITION,
        obs::phase::MARK_CORE,
        obs::phase::CLUSTER_CORE,
        obs::phase::CLUSTER_BORDER,
    ]
    .into_iter()
    .map(|phase| obs::PhaseExecution {
        phase,
        runs: 0,
        skips: 0,
        skipped_by_generation: None,
        duration: std::time::Duration::ZERO,
    })
    .collect();
    for cell in cells {
        for p in phases_from_query(&cell.stats) {
            let acc = out
                .iter_mut()
                .find(|a| a.phase == p.phase)
                .expect("fixed phase set");
            acc.runs += p.runs;
            acc.skips += p.skips;
            acc.duration += p.duration;
            if p.skipped_by_generation.is_some() {
                acc.skipped_by_generation = p.skipped_by_generation;
            }
        }
    }
    out
}

/// The EXPLAIN phase list of one streaming apply: the two maintenance
/// phases that dominate an update's cost (overlay bookkeeping and
/// component/adjacency repair are part of the wall total). A durable
/// session's applies additionally report the write-ahead logging cost —
/// the WAL phases appear exactly when the batch was logged
/// (`stats.wal_bytes > 0`), so non-durable sessions' reports are
/// unchanged.
fn phases_from_update(stats: &UpdateStats) -> Vec<obs::PhaseExecution> {
    let mut phases = Vec::with_capacity(4);
    if stats.wal_bytes > 0 {
        phases.push(obs::PhaseExecution::ran(
            obs::phase::WAL_APPEND,
            stats.wal_append_time,
        ));
        phases.push(obs::PhaseExecution::ran(
            obs::phase::WAL_FSYNC,
            stats.wal_fsync_time,
        ));
    }
    phases.push(obs::PhaseExecution::ran(
        obs::phase::MARK_CORE_REGION,
        stats.mark_core_region_time,
    ));
    phases.push(obs::PhaseExecution::ran(
        obs::phase::CONNECT_REGION,
        stats.connect_region_time,
    ));
    phases
}

/// One clustering result grid cell of a [`ClusterSession::sweep`].
pub struct SweepCell {
    /// The ε of this grid cell.
    pub eps: f64,
    /// The minPts of this grid cell.
    pub min_pts: usize,
    /// The labels for `(eps, min_pts)` — the same [`Labels`] type every
    /// other session path produces.
    pub labels: Labels,
    /// Phase timings and cache-reuse flags of this grid cell's query.
    pub stats: QueryStats,
}

/// A clustering plus the per-query statistics describing how it was served
/// (returned by [`ClusterSession::query`], the stats-bearing sibling of
/// [`ClusterSession::cluster`]).
pub struct QueryOutcome {
    /// The labels.
    pub labels: Labels,
    /// Phase timings and cache-reuse flags of this query.
    pub stats: QueryStats,
}

/// A clustering session over one point set whose dimensionality is a
/// runtime value.
///
/// The session is the workspace's front door: it serves one-shot queries,
/// batched parameter sweeps, and streaming updates from a single handle,
/// with one [`Labels`] result type across all three. See the crate docs
/// for the architecture; the examples below each run as doctests.
///
/// # One-shot
///
/// ```
/// use dbscan::{ClusterSession, Params, PointCloud};
///
/// // Two clusters of five points each, one far-away noise point.
/// let mut rows: Vec<[f64; 2]> = Vec::new();
/// for i in 0..5 {
///     rows.push([0.1 * i as f64, 0.0]);
///     rows.push([0.1 * i as f64, 30.0]);
/// }
/// rows.push([15.0, 15.0]);
///
/// let session = ClusterSession::ingest(PointCloud::from_rows(&rows)?)?;
/// let labels = session.cluster(Params::new(0.5, 3))?;
/// assert_eq!(labels.num_clusters(), 2);
/// assert!(labels.is_noise(rows.len() - 1));
/// # Ok::<(), dbscan::Error>(())
/// ```
///
/// # Parameter sweep
///
/// ```
/// use dbscan::{ClusterSession, PointCloud};
///
/// let coords: Vec<f64> = (0..40).map(|i| 0.1 * (i % 20) as f64).collect();
/// let session = ClusterSession::ingest(PointCloud::new(2, coords)?)?;
///
/// // 2 × 2 parameter grid, one partition build per ε underneath.
/// let grid = session.sweep(([0.5, 0.7], [3, 4]))?;
/// assert_eq!(grid.len(), 4);
/// assert_eq!(session.cache_stats().partition_misses, 2);
/// # Ok::<(), dbscan::Error>(())
/// ```
///
/// # Streaming updates
///
/// ```
/// use dbscan::{ClusterSession, Params, PointCloud};
///
/// let rows: Vec<[f64; 2]> = (0..10).map(|i| [0.1 * i as f64, 0.0]).collect();
/// let mut session = ClusterSession::ingest(PointCloud::from_rows(&rows)?)?;
/// let params = Params::new(0.5, 3);
///
/// let mut updates = session.updates(params)?;
/// let far = updates.insert(&[50.0, 50.0])?;        // a lone noise point
/// assert!(updates.labels().is_noise(rows.len()));
/// updates.delete(far)?;
/// updates.finish();                                 // freeze back to sweep mode
///
/// assert_eq!(session.cluster(params)?.num_clusters(), 1);
/// # Ok::<(), dbscan::Error>(())
/// ```
pub struct ClusterSession {
    dim: usize,
    pub(crate) inner: Box<dyn ErasedSession>,
    /// Set by [`SessionBuilder::shard`]: routes [`ClusterSession::cluster`]
    /// through the sharded path.
    shard: Option<ShardConfig>,
    /// EXPLAIN report of the most recent successful query/sweep/apply.
    /// Interior mutability because `query`/`sweep` take `&self`.
    last_explain: Mutex<Option<obs::ExplainReport>>,
}

impl std::fmt::Debug for ClusterSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSession")
            .field("dim", &self.dim)
            .field("num_points", &self.num_points())
            .finish_non_exhaustive()
    }
}

impl ClusterSession {
    /// Starts configuring a session (cache capacities, then
    /// [`SessionBuilder::ingest`]).
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// Opens a session over `cloud` with default cache capacities.
    pub fn ingest(cloud: PointCloud) -> Result<Self, Error> {
        SessionBuilder::new().ingest(cloud)
    }

    /// Opens a session over `cloud` persisted in the durable store at
    /// `dir` (see [`SessionBuilder::durable`]). Any prior store at `dir`
    /// is reinitialized.
    pub fn ingest_durable(
        cloud: PointCloud,
        dir: impl AsRef<Path>,
        options: DurableOptions,
    ) -> Result<Self, Error> {
        SessionBuilder::new().durable(dir, options).ingest(cloud)
    }

    /// Reopens the session persisted in the durable store at `dir`:
    /// recovers the live point set from the newest snapshot plus the WAL
    /// suffix, checkpoints, and serves it in indexed mode. The recovered
    /// points (ascending stable id) become the new session's ingest order,
    /// so labels computed before the crash and after recovery line up
    /// point for point.
    ///
    /// ```no_run
    /// use dbscan::{ClusterSession, DurableOptions, Params, PointCloud};
    ///
    /// let dir = "/var/lib/myapp/clusters";
    /// let opts = DurableOptions::default();
    /// {
    ///     let rows: Vec<[f64; 2]> = (0..10).map(|i| [0.1 * i as f64, 0.0]).collect();
    ///     let mut session =
    ///         ClusterSession::ingest_durable(PointCloud::from_rows(&rows)?, dir, opts)?;
    ///     let mut updates = session.updates(Params::new(0.5, 3))?;
    ///     updates.insert(&[0.15, 0.0])?; // WAL'd before it is applied
    ///     // process crashes here — the insert survives
    /// }
    /// let recovered = ClusterSession::open_durable(dir, opts)?;
    /// assert_eq!(recovered.num_points(), 11);
    /// # Ok::<(), dbscan::Error>(())
    /// ```
    pub fn open_durable(dir: impl AsRef<Path>, options: DurableOptions) -> Result<Self, Error> {
        SessionBuilder::new().open_durable(dir, options)
    }

    /// Wraps an already-dispatched session state — the constructor the
    /// generational publish path uses for each immutable published
    /// generation.
    pub(crate) fn from_parts(dim: usize, inner: Box<dyn ErasedSession>) -> Self {
        ClusterSession {
            dim,
            inner,
            shard: None,
            last_explain: Mutex::new(None),
        }
    }

    /// Converts this session into a concurrently shareable one: a single
    /// writer applies update batches while any number of readers resolve
    /// queries against immutable published generations. See
    /// [`crate::ConcurrentSession`] for the full contract.
    ///
    /// `params` selects the maintained clustering (the streaming layer
    /// maintains one (ε, minPts) incrementally; published generations still
    /// answer arbitrary-parameter queries through their own caches). For a
    /// durable session the conversion starts a WAL'd streaming episode, so
    /// every batch applied through the concurrent writer is logged before
    /// it is acknowledged.
    pub fn share(self, params: impl Into<DbscanParams>) -> Result<crate::ConcurrentSession, Error> {
        crate::ConcurrentSession::from_session(self, params.into())
    }

    /// The dimensionality of the session's points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points currently served (the ingested count, adjusted by
    /// any applied streaming updates).
    pub fn num_points(&self) -> usize {
        self.inner.num_points()
    }

    /// Clusters the session's points with the paper's default exact
    /// variant, reusing cached phase state where possible. Accepts anything
    /// convertible into [`crate::Params`] — `Params::new(0.5, 3)` or the
    /// tuple `(0.5, 3)`.
    ///
    /// With [`SessionBuilder::shard`] configured, the run goes through the
    /// cell-graph-sharded path instead of the engine snapshot; the labels
    /// are identical either way.
    pub fn cluster(&self, params: impl Into<DbscanParams>) -> Result<Labels, Error> {
        let params = params.into();
        match self.shard {
            Some(config) => Ok(self.cluster_sharded(params, config)?.0),
            None => Ok(self.query(params, VariantConfig::exact())?.labels),
        }
    }

    /// Runs the cell-graph-sharded clustering path explicitly (regardless
    /// of whether the builder configured it), returning the labels together
    /// with the run's [`ShardStats`] — shard count, boundary-cell and
    /// boundary-edge counts, and per-phase wall times including the merge
    /// phase. The session's cached spatial index for `params.eps` is reused
    /// when one exists.
    pub fn cluster_sharded(
        &self,
        params: impl Into<DbscanParams>,
        config: ShardConfig,
    ) -> Result<(Labels, ShardStats), Error> {
        let params = params.into();
        let scope = obs::OpScope::begin_with_pool("cluster_sharded", rayon::pool_busy_nanos());
        let (labels, stats, index_generation) = {
            let _span = obs::Span::enter("session", obs::phase::QUERY)
                .eps(params.eps)
                .min_pts(params.min_pts)
                .n(self.num_points());
            self.inner.cluster_sharded(params, config.num_shards)
        }?;
        let mut report = scope.finish_with_pool(rayon::pool_busy_nanos(), rayon::pool_threads());
        report.variant = format!("exact, sharded over {} shards", stats.num_shards);
        report.eps = params.eps;
        report.min_pts = params.min_pts;
        report.n = self.num_points();
        report.cells_visited = stats.num_cells;
        report.num_core_points = stats.num_core_points;
        report.phases = phases_from_shard(&stats, index_generation);
        self.store_explain(report);
        Ok((labels, stats))
    }

    /// Runs an explicit algorithm variant and returns the labels together
    /// with the per-query statistics (phase timings, cache-reuse flags).
    pub fn query(
        &self,
        params: impl Into<DbscanParams>,
        variant: VariantConfig,
    ) -> Result<QueryOutcome, Error> {
        let params = params.into();
        let scope = obs::OpScope::begin_with_pool("query", rayon::pool_busy_nanos());
        let outcome = {
            let _span = obs::Span::enter("session", obs::phase::QUERY)
                .eps(params.eps)
                .min_pts(params.min_pts)
                .n(self.num_points());
            self.inner.query(params, variant)
        }?;
        let mut report = scope.finish_with_pool(rayon::pool_busy_nanos(), rayon::pool_threads());
        report.variant = outcome.stats.variant.clone();
        report.eps = params.eps;
        report.min_pts = params.min_pts;
        report.n = self.num_points();
        report.cells_visited = outcome.stats.num_cells;
        report.num_core_points = outcome.stats.num_core_points;
        report.phases = phases_from_query(&outcome.stats);
        self.store_explain(report);
        Ok(outcome)
    }

    /// Runs a full `ε-grid × minPts-grid` cross-product in parallel. Each
    /// ε's spatial index is built once and shared across that ε's minPts
    /// values, and repeated grid entries are deduplicated before dispatch.
    ///
    /// Accepts anything convertible into [`SweepGrid`]: the builder form
    /// `SweepGrid::new([0.5, 0.7], [3, 4])` (with
    /// [`SweepGrid::variant`] for a non-default algorithm variant), or
    /// plain tuples of arrays/slices/vecs —
    /// `session.sweep(([0.5, 0.7], [3, 4]))`.
    pub fn sweep(&self, grid: impl Into<SweepGrid>) -> Result<Vec<SweepCell>, Error> {
        let grid = grid.into();
        let (eps_grid, min_pts_grid, variant) = (grid.eps, grid.min_pts, grid.variant);
        let scope = obs::OpScope::begin_with_pool("sweep", rayon::pool_busy_nanos());
        let grid = {
            let _span = obs::Span::enter("session", obs::phase::SWEEP)
                .n(eps_grid.len() * min_pts_grid.len());
            self.inner.sweep(&eps_grid, &min_pts_grid, variant)
        }?;
        let mut report = scope.finish_with_pool(rayon::pool_busy_nanos(), rayon::pool_threads());
        report.variant = format!(
            "{} over a {}x{} grid",
            variant.paper_name(),
            eps_grid.len(),
            min_pts_grid.len()
        );
        if let [eps] = *eps_grid {
            report.eps = eps;
        }
        if let [min_pts] = *min_pts_grid {
            report.min_pts = min_pts;
        }
        report.n = self.num_points() * grid.len().max(1);
        report.cells_visited = grid.iter().map(|c| c.stats.num_cells).sum();
        report.num_core_points = grid.iter().map(|c| c.stats.num_core_points).sum();
        report.phases = phases_from_sweep(&grid);
        self.store_explain(report);
        Ok(grid)
    }

    /// The [`obs::ExplainReport`] of this session's most recent successful
    /// `query`, `sweep`, or streaming `apply`/`insert`/`delete` — which
    /// phases ran vs. were cache-skipped (and by which generation), phase
    /// and pool timings, parallel efficiency, registry counter deltas, and
    /// (with the `alloc-profile` feature and a counting allocator
    /// installed) allocation deltas. `None` before the first operation.
    ///
    /// Spans are attached only under `DBSCAN_OBS=trace`; counter deltas are
    /// empty under `DBSCAN_OBS=off`. The registry and allocator are
    /// process-wide, so operations running *concurrently* in other sessions
    /// land in the same delta window — attribution is exact when operations
    /// don't overlap.
    pub fn explain_last(&self) -> Option<obs::ExplainReport> {
        self.last_explain
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    fn store_explain(&self, report: obs::ExplainReport) {
        *self.last_explain.lock().unwrap_or_else(|e| e.into_inner()) = Some(report);
    }

    /// Cumulative cache counters since the session was opened (or since the
    /// last streaming handle froze back, which re-indexes).
    pub fn cache_stats(&self) -> CacheStats {
        self.inner.cache_stats()
    }

    /// A point-in-time snapshot of the **process-wide** metrics registry:
    /// cache hit/miss counters, kernel and BCP work counters, streaming
    /// maintenance counters, query/apply duration histograms, and the
    /// worker-pool profile — everything the workspace records under the
    /// `DBSCAN_OBS` observability mode (see the [`obs`] crate docs).
    ///
    /// Unlike [`ClusterSession::cache_stats`], which counts this session's
    /// snapshot only, the registry accumulates across every session, engine
    /// and streaming path in the process since start. Empty when
    /// `DBSCAN_OBS=off`. Render it with
    /// [`obs::MetricsReport::to_prometheus`] for scraping.
    pub fn metrics(&self) -> obs::MetricsReport {
        obs::snapshot()
    }

    /// Drains and returns the recorded trace spans (phase-level timings with
    /// ε, minPts, point counts and thread ids), oldest first.
    ///
    /// Spans are recorded only under `DBSCAN_OBS=trace` and land in one
    /// **process-wide** ring buffer shared by every session; draining here
    /// empties it for all readers. The ring keeps the most recent
    /// [`obs::RING_CAPACITY`] spans — check [`obs::trace_dropped`] to see
    /// whether older ones were overwritten.
    pub fn take_trace(&self) -> Vec<obs::SpanRecord> {
        obs::take_trace()
    }

    /// Switches the session into streaming mode under `params` and returns
    /// the update handle. The cached spatial index for `params.eps` is
    /// reused when one exists, so entering streaming mode after queries at
    /// the same ε skips the re-partition entirely.
    ///
    /// While the handle lives the session is exclusively borrowed — queries
    /// and sweeps are statically impossible until the handle is dropped or
    /// [`UpdateHandle::finish`]ed, which freezes the live point set back
    /// into an indexed snapshot.
    ///
    /// **Point ids are per-episode.** Each call to `updates` hands out
    /// fresh stable ids: the current points get `0..num_points()` in their
    /// served order (ingest order initially; ascending previous-episode id
    /// after a freeze), and inserts extend from there. Ids cached from an
    /// earlier handle do not address the same points in a later one —
    /// re-read [`UpdateHandle::live_ids`] at the start of every episode.
    ///
    /// The incremental maintenance underneath enumerates grid-key
    /// neighbourhoods whose size grows steeply with the dimension; it is
    /// engineered for the low-dimensional regime (d ≤ 3 is where the
    /// paper's grid constants are small). Higher-dimensional sessions can
    /// still stream, but per-update costs rise accordingly.
    pub fn updates(&mut self, params: impl Into<DbscanParams>) -> Result<UpdateHandle<'_>, Error> {
        let params = params.into();
        self.inner.begin_updates(params)?;
        Ok(UpdateHandle {
            session: self,
            params,
        })
    }
}

/// Exclusive streaming access to a [`ClusterSession`].
///
/// Obtained from [`ClusterSession::updates`]; insertions and deletions are
/// maintained incrementally (work proportional to the update's
/// ε-neighbourhood, not the dataset). Dropping the handle — or calling
/// [`UpdateHandle::finish`] — freezes the live point set back into the
/// session's indexed mode.
pub struct UpdateHandle<'s> {
    session: &'s mut ClusterSession,
    params: DbscanParams,
}

impl UpdateHandle<'_> {
    /// The shared apply path of [`UpdateHandle::apply`], `insert`, and
    /// `delete`: runs the batch under an EXPLAIN scope and stores the
    /// session's `explain_last` report on success.
    fn apply_scoped(
        &mut self,
        insert_coords: &[f64],
        deletes: &[usize],
    ) -> Result<UpdateStats, Error> {
        let n = insert_coords.len() / self.session.dim.max(1) + deletes.len();
        let scope = obs::OpScope::begin_with_pool("apply", rayon::pool_busy_nanos());
        let stats = {
            let _span = obs::Span::enter("session", obs::phase::APPLY)
                .eps(self.params.eps)
                .min_pts(self.params.min_pts)
                .n(n);
            self.session.inner.apply(insert_coords, deletes)
        }?;
        let mut report = scope.finish_with_pool(rayon::pool_busy_nanos(), rayon::pool_threads());
        report.eps = self.params.eps;
        report.min_pts = self.params.min_pts;
        report.n = n;
        report.cells_visited = stats.cells_touched;
        report.phases = phases_from_update(&stats);
        self.session.store_explain(report);
        Ok(stats)
    }

    /// Applies a batch of updates: `inserts` (validated against the
    /// session's dimensionality) and `deletes` (stable point ids). The
    /// batch is atomic — on error nothing is applied.
    pub fn apply(&mut self, inserts: &PointCloud, deletes: &[usize]) -> Result<UpdateStats, Error> {
        if inserts.dim() != self.session.dim && !inserts.is_empty() {
            return Err(Error::DimensionMismatch {
                expected: self.session.dim,
                got: inserts.dim(),
            });
        }
        self.apply_scoped(inserts.coords(), deletes)
    }

    /// Inserts one point, returning its stable id. Fails on arity mismatch
    /// with the session's dimensionality or a non-finite coordinate.
    pub fn insert(&mut self, point: &[f64]) -> Result<usize, Error> {
        if point.len() != self.session.dim {
            return Err(Error::DimensionMismatch {
                expected: self.session.dim,
                got: point.len(),
            });
        }
        crate::cloud::validate_finite(point, self.session.dim, 0)?;
        let stats = self.apply_scoped(point, &[])?;
        Ok(stats.inserted_ids[0])
    }

    /// Deletes one live point by stable id.
    pub fn delete(&mut self, id: usize) -> Result<UpdateStats, Error> {
        self.apply_scoped(&[], &[id])
    }

    /// The current labels of the live points, in ascending stable-id order
    /// (the order [`UpdateHandle::live_ids`] reports) — the same [`Labels`]
    /// type the query and sweep paths produce, maintained incrementally.
    pub fn labels(&self) -> Labels {
        self.session.inner.stream_labels()
    }

    /// The stable ids of the live points, ascending. Ids are stable for the
    /// lifetime of *this* handle only — the next [`ClusterSession::updates`]
    /// episode renumbers (see there).
    pub fn live_ids(&self) -> Vec<usize> {
        self.session.inner.live_ids()
    }

    /// The live points as a [`PointCloud`], in the same ascending stable-id
    /// order as [`UpdateHandle::labels`] and [`UpdateHandle::live_ids`].
    pub fn live_cloud(&self) -> PointCloud {
        // Every live coordinate passed validation when it entered the
        // session, so the re-wrap skips the O(n·dim) finiteness re-scan.
        PointCloud::trusted(self.session.dim, self.session.inner.live_coords())
    }

    /// Number of live points.
    pub fn num_live(&self) -> usize {
        self.session.inner.num_points()
    }

    /// Ends streaming mode now, freezing the live point set back into the
    /// session's indexed snapshot. (Dropping the handle does the same; this
    /// method just names the hand-off.)
    pub fn finish(self) {}
}

impl Drop for UpdateHandle<'_> {
    fn drop(&mut self) {
        self.session.inner.freeze();
    }
}

/// The object-safe surface each monomorphized session state implements.
/// Crate-private and implemented only by [`SessionState`]: the jump table
/// in [`open_session`] is the sole constructor, so every trait object in a
/// [`ClusterSession`] is backed by this crate's dispatch. (The
/// `crate::concurrent` module drives it directly for the generational
/// publish path.)
pub(crate) trait ErasedSession: Send + Sync {
    fn num_points(&self) -> usize;
    fn query(&self, params: DbscanParams, variant: VariantConfig) -> Result<QueryOutcome, Error>;
    /// The cell-graph-sharded cluster path (indexed mode only): labels,
    /// the run's [`ShardStats`], and — when a cached spatial index served
    /// the partition phase — that index's generation stamp.
    fn cluster_sharded(
        &self,
        params: DbscanParams,
        num_shards: usize,
    ) -> Result<(Labels, ShardStats, Option<u64>), Error>;
    fn sweep(
        &self,
        eps_grid: &[f64],
        min_pts_grid: &[usize],
        variant: VariantConfig,
    ) -> Result<Vec<SweepCell>, Error>;
    fn cache_stats(&self) -> CacheStats;
    fn begin_updates(&mut self, params: DbscanParams) -> Result<(), Error>;
    fn apply(&mut self, insert_coords: &[f64], deletes: &[usize]) -> Result<UpdateStats, Error>;
    fn stream_labels(&self) -> Labels;
    fn live_ids(&self) -> Vec<usize>;
    fn live_coords(&self) -> Vec<f64>;
    fn freeze(&mut self);
    /// A fresh indexed session state over the current live point set,
    /// without leaving the current mode — the publish half of generational
    /// concurrency. The new state's engine caches stamp generations
    /// starting at `first_generation`. Works from every mode (streaming
    /// modes snapshot the live overlay; indexed mode re-indexes a copy of
    /// the snapshot's points).
    fn publish_indexed(&self, first_generation: u64) -> Result<Box<dyn ErasedSession>, Error>;
    /// Persists a durable session's current live set (snapshot + WAL
    /// reset). A no-op `Ok(())` for non-durable modes.
    fn checkpoint(&mut self) -> Result<(), Error>;
}

/// The session's mode: an engine snapshot (query/sweep service) or a
/// streaming clusterer (update service) — write-ahead logged when the
/// session is durable. `Transitioning` exists only inside mode changes
/// (the enum must be takeable by value). The variants are boxed: exactly
/// one `Mode` exists per session, so the indirection is irrelevant, and it
/// keeps the enum pointer-sized.
enum Mode<const D: usize> {
    Indexed(Box<Snapshot<D>>),
    Streaming(Box<StreamingClusterer<D>>),
    DurableStreaming(Box<DurableClusterer<D>>),
    Transitioning,
}

/// The monomorphized state behind a [`ClusterSession`] for one dimension.
struct SessionState<const D: usize> {
    engine: Engine,
    mode: Mode<D>,
    /// Present on durable sessions: the store directory and the WAL
    /// policy every streaming episode runs under.
    durable: Option<(PathBuf, DurableOptions)>,
}

impl<const D: usize> SessionState<D> {
    fn new(
        engine: Engine,
        points: Vec<Point<D>>,
        durable: Option<(PathBuf, DurableOptions)>,
    ) -> Result<Self, Error> {
        if let Some((dir, _)) = &durable {
            // Persist the ingested cloud before serving anything: a durable
            // session recovers to at least its ingest state.
            dbscan_durable::init_store(&RealStorage::shared(), dir, points.clone(), None)?;
        }
        let snapshot = engine.index(points);
        Ok(SessionState {
            engine,
            mode: Mode::Indexed(Box::new(snapshot)),
            durable,
        })
    }

    fn snapshot(&self) -> &Snapshot<D> {
        match &self.mode {
            Mode::Indexed(snapshot) => snapshot,
            // `UpdateHandle` holds the session's unique borrow while
            // streaming, so the query paths cannot observe these modes.
            _ => unreachable!("query paths are unreachable while streaming"),
        }
    }

    /// The live `(stable id, point)` pairs of whichever streaming mode is
    /// active.
    fn streaming_live_points(&self) -> Vec<(usize, Point<D>)> {
        match &self.mode {
            Mode::Streaming(clusterer) => clusterer.live_points(),
            Mode::DurableStreaming(durable) => durable.live_points(),
            _ => unreachable!("update paths require an UpdateHandle"),
        }
    }
}

impl<const D: usize> ErasedSession for SessionState<D> {
    fn num_points(&self) -> usize {
        match &self.mode {
            Mode::Indexed(snapshot) => snapshot.num_points(),
            Mode::Streaming(clusterer) => clusterer.num_live(),
            Mode::DurableStreaming(durable) => durable.num_live(),
            Mode::Transitioning => unreachable!("mode transitions are not observable"),
        }
    }

    fn query(&self, params: DbscanParams, variant: VariantConfig) -> Result<QueryOutcome, Error> {
        let result = self.snapshot().query_variant(params, variant)?;
        Ok(QueryOutcome {
            labels: Labels::from(result.clustering),
            stats: result.stats,
        })
    }

    fn cluster_sharded(
        &self,
        params: DbscanParams,
        num_shards: usize,
    ) -> Result<(Labels, ShardStats, Option<u64>), Error> {
        params.validate().map_err(Error::from)?;
        let snapshot = self.snapshot();
        // Reuse the snapshot's cached phase-1 state when a grid index for
        // this ε exists; otherwise build one (without inserting it — cache
        // admission stays the engine's decision, made on its own queries).
        let (index, generation, partition_time) =
            match snapshot.cached_index_stamped(params.eps, CellMethod::Grid) {
                Some((generation, index)) => (index, Some(generation), Duration::ZERO),
                None => {
                    let start = Instant::now();
                    let index = Arc::new(SpatialIndex::build(
                        snapshot.points(),
                        params.eps,
                        CellMethod::Grid,
                    )?);
                    (index, None, start.elapsed())
                }
            };
        let assignment =
            ShardAssignment::build(&index.partition.cells, &index.neighbors, num_shards);
        let (clustering, mut stats) = shard_cluster_on_index(&index, params.min_pts, &assignment);
        stats.partition_time = partition_time;
        stats.total_time += partition_time;
        Ok((Labels::from(clustering), stats, generation))
    }

    fn sweep(
        &self,
        eps_grid: &[f64],
        min_pts_grid: &[usize],
        variant: VariantConfig,
    ) -> Result<Vec<SweepCell>, Error> {
        let grid = self
            .snapshot()
            .sweep_variant(eps_grid, min_pts_grid, variant)?;
        Ok(grid
            .into_iter()
            .map(|cell| SweepCell {
                eps: cell.eps,
                min_pts: cell.min_pts,
                labels: Labels::from(cell.clustering),
                stats: cell.stats,
            })
            .collect())
    }

    fn cache_stats(&self) -> CacheStats {
        self.snapshot().cache_stats()
    }

    fn begin_updates(&mut self, params: DbscanParams) -> Result<(), Error> {
        // Validate before consuming the snapshot: with valid parameters the
        // grid-backed conversion below cannot fail, so the session is never
        // left without a mode.
        params.validate().map_err(Error::from)?;
        if let Some((dir, options)) = self.durable.clone() {
            // Durable episode: re-found the store on the current live set
            // (stable ids are per-episode, so the store's external ids — a
            // fresh `0..n` — coincide with the episode's ids) and log every
            // batch from here on.
            let snapshot = match std::mem::replace(&mut self.mode, Mode::Transitioning) {
                Mode::Indexed(snapshot) => snapshot,
                other => {
                    self.mode = other;
                    unreachable!("begin_updates requires the indexed mode")
                }
            };
            let points = snapshot.points().to_vec();
            match DurableClusterer::create(RealStorage::shared(), &dir, points, params, options) {
                Ok(durable) => {
                    self.mode = Mode::DurableStreaming(Box::new(durable));
                    Ok(())
                }
                Err(err) => {
                    // Leave the session serviceable: the snapshot is
                    // untouched by the failed store initialization.
                    self.mode = Mode::Indexed(snapshot);
                    Err(err.into())
                }
            }
        } else {
            match std::mem::replace(&mut self.mode, Mode::Transitioning) {
                Mode::Indexed(snapshot) => {
                    let clusterer = (*snapshot).into_streaming(params)?;
                    self.mode = Mode::Streaming(Box::new(clusterer));
                    Ok(())
                }
                other => {
                    self.mode = other;
                    unreachable!("begin_updates requires the indexed mode")
                }
            }
        }
    }

    fn apply(&mut self, insert_coords: &[f64], deletes: &[usize]) -> Result<UpdateStats, Error> {
        let batch = UpdateBatch {
            inserts: points_from_flat::<D>(insert_coords),
            deletes: deletes.to_vec(),
        };
        match &mut self.mode {
            Mode::Streaming(clusterer) => Ok(clusterer.apply(batch)?),
            Mode::DurableStreaming(durable) => Ok(durable.apply(batch)?),
            _ => unreachable!("update paths require an UpdateHandle"),
        }
    }

    fn stream_labels(&self) -> Labels {
        match &self.mode {
            Mode::Streaming(clusterer) => Labels::from(clusterer.clustering()),
            Mode::DurableStreaming(durable) => Labels::from(durable.clustering()),
            _ => unreachable!("update paths require an UpdateHandle"),
        }
    }

    fn live_ids(&self) -> Vec<usize> {
        self.streaming_live_points()
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    fn live_coords(&self) -> Vec<f64> {
        let live = self.streaming_live_points();
        let mut out = Vec::with_capacity(live.len() * D);
        for (_, p) in live {
            out.extend_from_slice(&p.coords);
        }
        out
    }

    fn freeze(&mut self) {
        match std::mem::replace(&mut self.mode, Mode::Transitioning) {
            Mode::Streaming(clusterer) => {
                let points: Vec<Point<D>> = clusterer
                    .live_points()
                    .into_iter()
                    .map(|(_, p)| p)
                    .collect();
                self.mode = Mode::Indexed(Box::new(self.engine.index(points)));
            }
            Mode::DurableStreaming(mut durable) => {
                // Best-effort final checkpoint (freeze runs from Drop, so
                // the error cannot propagate): if it fails, the WAL still
                // holds every logged batch and recovery replays them — only
                // the log compaction is lost.
                let _ = durable.checkpoint();
                let points: Vec<Point<D>> =
                    durable.live_points().into_iter().map(|(_, p)| p).collect();
                self.mode = Mode::Indexed(Box::new(self.engine.index(points)));
            }
            _ => unreachable!("freeze requires a streaming mode"),
        }
    }

    fn publish_indexed(&self, first_generation: u64) -> Result<Box<dyn ErasedSession>, Error> {
        let snapshot = match &self.mode {
            Mode::Indexed(snapshot) => self.engine.index_from_generation(
                snapshot.points().to_vec(),
                Vec::new(),
                first_generation,
            ),
            Mode::Streaming(clusterer) => clusterer.snapshot_live(&self.engine, first_generation),
            Mode::DurableStreaming(durable) => durable
                .clusterer()
                .snapshot_live(&self.engine, first_generation),
            Mode::Transitioning => unreachable!("mode transitions are not observable"),
        };
        Ok(Box::new(SessionState {
            engine: self.engine.clone(),
            mode: Mode::Indexed(Box::new(snapshot)),
            // Published generations are immutable read replicas; the store
            // stays owned by the writer they were published from.
            durable: None,
        }))
    }

    fn checkpoint(&mut self) -> Result<(), Error> {
        match &mut self.mode {
            Mode::DurableStreaming(durable) => {
                durable.checkpoint()?;
                Ok(())
            }
            _ => Ok(()),
        }
    }
}

/// The dimension dispatch: packs the cloud into `Point<D>`s and
/// monomorphizes the session state for every supported dimension, one jump
/// table arm each. Dimensions outside the table report
/// [`Error::UnsupportedDimension`].
///
/// The arms must cover exactly
/// `pardbscan::ERASED_DIM_MIN..=ERASED_DIM_MAX` — the same range as the
/// core crate's `erased_pipeline` jump table, which the one-shot
/// [`crate::cluster`] path dispatches through (and which the error message
/// quotes). The `session_range_equals_erased_pipeline_range` test pins the
/// two tables together.
fn open_session(
    engine: Engine,
    cloud: &PointCloud,
    durable: Option<(PathBuf, DurableOptions)>,
) -> Result<Box<dyn ErasedSession>, Error> {
    macro_rules! open_dim {
        ($d:literal) => {
            Box::new(SessionState::<$d>::new(
                engine,
                points_from_flat::<$d>(cloud.coords()),
                durable,
            )?) as Box<dyn ErasedSession>
        };
    }
    Ok(match cloud.dim() {
        2 => open_dim!(2),
        3 => open_dim!(3),
        4 => open_dim!(4),
        5 => open_dim!(5),
        6 => open_dim!(6),
        7 => open_dim!(7),
        8 => open_dim!(8),
        dim => return Err(Error::UnsupportedDimension(dim)),
    })
}

/// The durable twin of [`open_session`]: recovers the store at `dir` for
/// the store's own dimensionality (read from its file headers) and serves
/// the recovered points in indexed mode.
fn open_durable_session(
    engine: Engine,
    storage: Arc<dyn Storage>,
    dir: &Path,
    options: DurableOptions,
    dim: usize,
) -> Result<Box<dyn ErasedSession>, Error> {
    fn recover<const D: usize>(
        engine: Engine,
        storage: Arc<dyn Storage>,
        dir: &Path,
        options: DurableOptions,
    ) -> Result<SessionState<D>, Error> {
        let has_wal = storage.exists(&dir.join(dbscan_durable::wal::WAL_FILE));
        let snapshot = dbscan_durable::read_store_snapshot::<D>(&storage, dir)?;
        let points: Vec<Point<D>> = match (&snapshot, has_wal) {
            // An idle store (ingested or frozen, never streamed since):
            // nothing to replay.
            (Some(s), false) if s.params.is_none() => s.points.clone(),
            // Anything else goes through full recovery; the checkpoint
            // afterwards means the *next* open takes the idle path or a
            // replay-free one.
            _ => {
                let mut durable = DurableClusterer::<D>::open(storage, dir, options)?;
                durable.checkpoint()?;
                durable.live_points().into_iter().map(|(_, p)| p).collect()
            }
        };
        Ok(SessionState {
            mode: Mode::Indexed(Box::new(engine.index(points))),
            engine,
            durable: Some((dir.to_path_buf(), options)),
        })
    }
    macro_rules! open_dim {
        ($d:literal) => {
            Box::new(recover::<$d>(engine, storage, dir, options)?) as Box<dyn ErasedSession>
        };
    }
    Ok(match dim {
        2 => open_dim!(2),
        3 => open_dim!(3),
        4 => open_dim!(4),
        5 => open_dim!(5),
        6 => open_dim!(6),
        7 => open_dim!(7),
        8 => open_dim!(8),
        dim => return Err(Error::UnsupportedDimension(dim)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_cloud(n_side: usize, spacing: f64) -> PointCloud {
        let mut coords = Vec::with_capacity(n_side * n_side * 2);
        for i in 0..n_side {
            for j in 0..n_side {
                coords.push(spacing * i as f64);
                coords.push(spacing * j as f64);
            }
        }
        PointCloud::new(2, coords).unwrap()
    }

    #[test]
    fn session_serves_all_supported_dimensions() {
        for dim in 2..=8usize {
            let coords: Vec<f64> = (0..dim * 20).map(|i| 0.05 * (i / dim) as f64).collect();
            let cloud = PointCloud::new(dim, coords).unwrap();
            let session = ClusterSession::ingest(cloud).unwrap();
            assert_eq!(session.dim(), dim);
            assert_eq!(session.num_points(), 20);
            let labels = session.cluster(DbscanParams::new(0.5, 3)).unwrap();
            assert_eq!(labels.len(), 20);
            assert_eq!(labels.num_clusters(), 1, "dim {dim}");
        }
    }

    #[test]
    fn unsupported_dimensions_are_rejected_with_a_typed_error() {
        for dim in [1usize, 9, 13] {
            let cloud = PointCloud::new(dim, vec![0.0; dim * 3]).unwrap();
            assert_eq!(
                ClusterSession::ingest(cloud).unwrap_err(),
                Error::UnsupportedDimension(dim)
            );
        }
    }

    #[test]
    fn session_range_equals_erased_pipeline_range() {
        // The session's jump table and the core crate's erased_pipeline
        // table are written separately; this pins them to the same set so
        // extending one without the other fails loudly.
        for dim in 1..=pardbscan::ERASED_DIM_MAX + 4 {
            let cloud = PointCloud::new(dim, Vec::new()).unwrap();
            let session_accepts = ClusterSession::ingest(cloud).is_ok();
            assert_eq!(
                session_accepts,
                pardbscan::erased_pipeline(dim).is_some(),
                "dimension {dim}: session and erased_pipeline must agree"
            );
            assert_eq!(
                session_accepts,
                (pardbscan::ERASED_DIM_MIN..=pardbscan::ERASED_DIM_MAX).contains(&dim),
                "dimension {dim}: advertised constants must match the table"
            );
        }
    }

    #[test]
    fn update_episodes_renumber_point_ids() {
        // Documented contract: ids are per-episode. Episode 1 deletes id 0;
        // after the freeze, episode 2's live ids are renumbered from 0
        // again (so a cached episode-1 id must not be reused).
        let mut session = ClusterSession::ingest(grid_cloud(4, 0.1)).unwrap();
        let params = DbscanParams::new(0.2, 3);
        let mut updates = session.updates(params).unwrap();
        assert_eq!(updates.live_ids(), (0..16).collect::<Vec<_>>());
        updates.delete(0).unwrap();
        updates.finish();
        let updates = session.updates(params).unwrap();
        assert_eq!(updates.live_ids(), (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn one_session_serves_queries_sweeps_and_updates() {
        let mut session = ClusterSession::builder()
            .partition_cache_capacity(4)
            .core_cache_capacity(8)
            .ingest(grid_cloud(10, 0.1))
            .unwrap();
        let params = DbscanParams::new(0.2, 4);

        let one_shot = session.cluster(params).unwrap();
        assert_eq!(one_shot.num_clusters(), 1);

        let grid = session.sweep(([0.2, 0.35], [4, 8])).unwrap();
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].labels, one_shot, "sweep cell ≡ one-shot labels");
        assert!(session.cache_stats().partition_hits > 0);

        let mut updates = session.updates(params).unwrap();
        let id = updates.insert(&[20.0, 20.0]).unwrap();
        assert_eq!(id, 100);
        assert!(updates.labels().is_noise(updates.num_live() - 1));
        let stats = updates.delete(id).unwrap();
        assert_eq!(stats.deleted, 1);
        assert_eq!(updates.live_ids().len(), 100);
        updates.finish();

        // Back in indexed mode: the same query is served again and still
        // matches (the live set round-tripped unchanged).
        assert_eq!(session.cluster(params).unwrap(), one_shot);
    }

    #[test]
    fn dropping_the_handle_freezes_back() {
        let mut session = ClusterSession::ingest(grid_cloud(6, 0.1)).unwrap();
        let params = DbscanParams::new(0.2, 3);
        {
            let mut updates = session.updates(params).unwrap();
            updates.insert(&[0.25, 0.25]).unwrap();
        } // dropped without finish()
        assert_eq!(session.num_points(), 37);
        assert_eq!(session.cluster(params).unwrap().num_clusters(), 1);
    }

    #[test]
    fn update_handle_validates_dimension_and_finiteness() {
        let mut session = ClusterSession::ingest(grid_cloud(4, 0.1)).unwrap();
        let mut updates = session.updates(DbscanParams::new(0.2, 3)).unwrap();
        assert_eq!(
            updates.insert(&[1.0, 2.0, 3.0]).unwrap_err(),
            Error::DimensionMismatch {
                expected: 2,
                got: 3
            }
        );
        assert_eq!(
            updates.insert(&[f64::NAN, 0.0]).unwrap_err(),
            Error::NonFiniteCoordinate {
                point: 0,
                axis: Some(0)
            }
        );
        let wrong_dim = PointCloud::new(3, vec![0.0, 0.0, 0.0]).unwrap();
        assert_eq!(
            updates.apply(&wrong_dim, &[]).unwrap_err(),
            Error::DimensionMismatch {
                expected: 2,
                got: 3
            }
        );
        assert_eq!(updates.delete(999).unwrap_err(), Error::UnknownPoint(999));
        assert_eq!(updates.num_live(), 16, "failed updates applied nothing");
    }

    #[test]
    fn invalid_parameters_are_typed_errors_on_every_path() {
        let mut session = ClusterSession::ingest(grid_cloud(4, 0.1)).unwrap();
        assert!(matches!(
            session.cluster(DbscanParams::new(0.0, 3)),
            Err(Error::InvalidParams(_))
        ));
        assert!(matches!(
            session.sweep(([0.2, f64::NAN], [3])),
            Err(Error::InvalidParams(_))
        ));
        assert!(matches!(
            session.updates(DbscanParams::new(-1.0, 3)),
            Err(Error::InvalidParams(_))
        ));
        // A failed `updates` must leave the session serviceable.
        assert!(session.cluster(DbscanParams::new(0.2, 3)).is_ok());
    }

    #[test]
    fn sharded_sessions_match_the_engine_and_explain_the_merge() {
        let params = DbscanParams::new(0.2, 4);
        let plain = ClusterSession::ingest(grid_cloud(10, 0.1)).unwrap();
        let expected = plain.cluster(params).unwrap();

        let sharded = ClusterSession::builder()
            .shard(ShardConfig::new(4))
            .ingest(grid_cloud(10, 0.1))
            .unwrap();
        // Tuple params convert on every entry point of the redesigned API.
        assert_eq!(sharded.cluster((0.2, 4)).unwrap(), expected);
        let explain = sharded.explain_last().unwrap();
        assert!(
            explain
                .phases
                .iter()
                .any(|p| p.phase == obs::phase::SHARD_MERGE),
            "the merge phase must be visible in EXPLAIN output"
        );
        let local = explain
            .phases
            .iter()
            .find(|p| p.phase == obs::phase::SHARD_LOCAL)
            .expect("shard-local phase present");
        assert_eq!(local.runs, 4, "one local-connect run per shard");

        // The explicit method works without builder configuration, and a
        // cached index (from the plain cluster above) is attributed as a
        // skipped partition phase.
        let (labels, stats) = plain
            .cluster_sharded((0.2, 4), ShardConfig::new(2))
            .unwrap();
        assert_eq!(labels, expected);
        assert_eq!(stats.num_shards, 2);
        let explain = plain.explain_last().unwrap();
        let partition = explain
            .phases
            .iter()
            .find(|p| p.phase == obs::phase::PARTITION)
            .expect("partition phase present");
        assert_eq!(partition.skips, 1, "cached index reused");
    }

    #[test]
    fn empty_cloud_sessions_work() {
        let session = ClusterSession::ingest(PointCloud::empty(4).unwrap()).unwrap();
        assert_eq!(session.num_points(), 0);
        let labels = session.cluster(DbscanParams::new(1.0, 3)).unwrap();
        assert!(labels.is_empty());
        assert_eq!(labels.num_clusters(), 0);
    }
}
