//! The facade's typed error.
//!
//! Every fallible entry point of this crate reports one [`Error`]: the
//! validation failures the facade checks itself (dimension support, arity,
//! finiteness) plus the underlying pipeline and streaming errors, lifted
//! into the same enum so callers match on a single type.

use pardbscan::DbscanError;
use std::fmt;

/// Errors reported by the `dbscan` facade.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The point dimensionality is outside the facade's dispatch range
    /// (`pardbscan::ERASED_DIM_MIN..=ERASED_DIM_MAX`, i.e. 2..=8). Higher
    /// dimensions remain reachable through the statically-typed per-crate
    /// APIs.
    UnsupportedDimension(usize),
    /// A point (a pushed row, an update insert, or a query point) does not
    /// have the cloud's dimensionality.
    DimensionMismatch {
        /// The cloud's dimensionality.
        expected: usize,
        /// The offending point's coordinate count.
        got: usize,
    },
    /// A flat coordinate buffer does not divide evenly into points of the
    /// declared dimensionality.
    RaggedCoordinates {
        /// Length of the flat buffer.
        len: usize,
        /// The declared dimensionality.
        dim: usize,
    },
    /// A coordinate is NaN or infinite. Quantizing such a value would
    /// silently corrupt grid cell keys, so the facade rejects it at ingest.
    NonFiniteCoordinate {
        /// Index of the offending point.
        point: usize,
        /// Axis of the offending coordinate, when known.
        axis: Option<usize>,
    },
    /// A construction that infers the dimensionality from its input (e.g.
    /// [`crate::PointCloud::from_rows`]) was given no points to infer from.
    EmptyCloud,
    /// ε, minPts or ρ is out of range (from the pipeline's validators).
    InvalidParams(String),
    /// A 2D-only method was requested for data of a different dimension.
    RequiresTwoDimensions(&'static str),
    /// A streaming delete referenced an id that was never handed out or is
    /// already dead.
    UnknownPoint(usize),
    /// The same id appears twice in one update batch's deletes.
    DuplicateDelete(usize),
    /// The underlying subsystem rejected the configuration for a reason the
    /// facade does not model (carried verbatim).
    Unsupported(String),
    /// A durable-store I/O operation failed (message carried verbatim; the
    /// store's on-disk state is untouched by the failed operation).
    Io(String),
    /// Durable on-disk state failed validation: a checksum mismatch, a
    /// truncated non-tail region, an implausible length, or a WAL replay
    /// the snapshot contradicts.
    Corrupt {
        /// Log sequence number of the offending WAL record, when the
        /// corruption is attributable to one.
        lsn: Option<u64>,
        /// What failed validation.
        reason: String,
    },
    /// A durable file was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnsupportedDimension(dim) => write!(
                f,
                "dimension {dim} is outside the facade's supported range \
                 {}..={} (use the statically-typed per-crate APIs for other \
                 dimensions)",
                pardbscan::ERASED_DIM_MIN,
                pardbscan::ERASED_DIM_MAX
            ),
            Error::DimensionMismatch { expected, got } => write!(
                f,
                "point has {got} coordinates but the cloud is {expected}-dimensional"
            ),
            Error::RaggedCoordinates { len, dim } => write!(
                f,
                "flat buffer of {len} coordinates does not divide into \
                 {dim}-dimensional points"
            ),
            Error::NonFiniteCoordinate { point, axis } => match axis {
                Some(axis) => write!(
                    f,
                    "point {point} has a non-finite coordinate on axis {axis}"
                ),
                None => write!(f, "point {point} has a non-finite coordinate"),
            },
            Error::EmptyCloud => write!(
                f,
                "cannot infer a dimensionality from an empty point list \
                 (use PointCloud::empty(dim) or PointCloud::new)"
            ),
            Error::InvalidParams(msg) => write!(f, "invalid DBSCAN parameters: {msg}"),
            Error::RequiresTwoDimensions(what) => {
                write!(f, "{what} is only available for 2-dimensional data")
            }
            Error::UnknownPoint(id) => {
                write!(f, "delete of unknown or already-deleted point id {id}")
            }
            Error::DuplicateDelete(id) => {
                write!(f, "point id {id} is deleted twice in one batch")
            }
            Error::Unsupported(msg) => write!(f, "unsupported configuration: {msg}"),
            Error::Io(msg) => write!(f, "durable store I/O error: {msg}"),
            Error::Corrupt {
                lsn: Some(lsn),
                reason,
            } => {
                write!(f, "durable store corrupt at lsn {lsn}: {reason}")
            }
            Error::Corrupt { lsn: None, reason } => {
                write!(f, "durable store corrupt: {reason}")
            }
            Error::VersionMismatch { found, expected } => write!(
                f,
                "durable store format version {found} is not the supported version {expected}"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl From<DbscanError> for Error {
    fn from(err: DbscanError) -> Self {
        match err {
            DbscanError::InvalidParams(msg) => Error::InvalidParams(msg),
            DbscanError::RequiresTwoDimensions(what) => Error::RequiresTwoDimensions(what),
        }
    }
}

impl From<dbscan_stream::StreamError> for Error {
    fn from(err: dbscan_stream::StreamError) -> Self {
        use dbscan_stream::StreamError;
        match err {
            StreamError::UnknownPoint(id) => Error::UnknownPoint(id),
            StreamError::DuplicateDelete(id) => Error::DuplicateDelete(id),
            // The facade validates inserts before they reach the streaming
            // layer, so this arm is defensive; the axis is not reported by
            // the streaming validator.
            StreamError::NonFinitePoint(i) => Error::NonFiniteCoordinate {
                point: i,
                axis: None,
            },
            StreamError::Dbscan(err) => err.into(),
            StreamError::Unsupported(msg) => Error::Unsupported(msg),
        }
    }
}

impl From<dbscan_durable::DurableError> for Error {
    fn from(err: dbscan_durable::DurableError) -> Self {
        use dbscan_durable::DurableError;
        match err {
            DurableError::Io(msg) => Error::Io(msg),
            DurableError::Corrupt { lsn, reason } => Error::Corrupt { lsn, reason },
            DurableError::VersionMismatch { found, expected } => {
                Error::VersionMismatch { found, expected }
            }
            // A replay rejection means the log and the snapshot disagree —
            // on-disk state inconsistent with itself, i.e. corruption (the
            // durable layer validates batches *before* appending them, so a
            // well-formed store never produces this).
            DurableError::Replay { lsn, source } => Error::Corrupt {
                lsn: Some(lsn),
                reason: format!("WAL replay rejected: {source}"),
            },
            DurableError::Stream(err) => err.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        assert!(Error::UnsupportedDimension(9).to_string().contains("2..=8"));
        assert!(Error::DimensionMismatch {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains("3-dimensional"));
        assert!(Error::NonFiniteCoordinate {
            point: 4,
            axis: Some(1)
        }
        .to_string()
        .contains("axis 1"));
        assert!(Error::EmptyCloud.to_string().contains("infer"));
    }

    #[test]
    fn underlying_errors_lift_losslessly() {
        let e: Error = DbscanError::InvalidParams("eps".into()).into();
        assert_eq!(e, Error::InvalidParams("eps".into()));
        let e: Error = dbscan_stream::StreamError::UnknownPoint(7).into();
        assert_eq!(e, Error::UnknownPoint(7));
        let e: Error = dbscan_stream::StreamError::DuplicateDelete(3).into();
        assert_eq!(e, Error::DuplicateDelete(3));
        let e: Error = dbscan_durable::DurableError::Io("disk full".into()).into();
        assert_eq!(e, Error::Io("disk full".into()));
        let e: Error = dbscan_durable::DurableError::corrupt(Some(9), "bad crc").into();
        assert_eq!(
            e,
            Error::Corrupt {
                lsn: Some(9),
                reason: "bad crc".into()
            }
        );
        let e: Error = dbscan_durable::DurableError::VersionMismatch {
            found: 2,
            expected: 1,
        }
        .into();
        assert_eq!(
            e,
            Error::VersionMismatch {
                found: 2,
                expected: 1
            }
        );
        let e: Error =
            dbscan_durable::DurableError::Stream(dbscan_stream::StreamError::UnknownPoint(5))
                .into();
        assert_eq!(e, Error::UnknownPoint(5));
    }
}
