//! Generational concurrency: one writer, any number of non-blocking
//! readers.
//!
//! A [`ClusterSession`]'s streaming mode takes `&mut` — while an
//! [`crate::UpdateHandle`] lives, the borrow checker statically forbids
//! queries, which is exactly the wrong shape for a service answering reads
//! under a continuous update feed. [`ConcurrentSession`] lifts the same
//! machinery into a multi-version scheme instead:
//!
//! * The **writer** owns a session pinned in streaming (or WAL'd
//!   durable-streaming) mode and applies [`ConcurrentSession::update`]
//!   batches through the incremental maintenance path.
//! * After each batch (or explicitly, via [`ConcurrentSession::publish`])
//!   it snapshots the live point set into an immutable **generation**: an
//!   indexed engine snapshot plus the maintained labels, wrapped in an
//!   [`Arc`] and swapped into the published slot.
//! * **Readers** call [`ConcurrentSession::current`] and resolve queries,
//!   sweeps and label fetches against that [`Generation`] — an `Arc` clone
//!   under a lock held for a pointer copy, never for index builds or
//!   batch applies. A reader keeps its generation alive for as long as it
//!   holds the `Arc`, even as newer generations are published.
//!
//! Generation ids are monotonic per session, start at 0 (the shared
//! ingest), and stamp the engine's generation-keyed caches: a query's
//! [`crate::QueryStats::index_generation`] is at least the id of the
//! generation that answered it, so EXPLAIN output and cache keys identify
//! the published version they belong to.
//!
//! This is the dynamic-evaluation contract of Berkholz, Keppeler &
//! Schweikardt ("Answering FO+MOD queries under updates") served over
//! shared memory: constant-delay answers from a consistent version while
//! the maintenance structure absorbs updates.
//!
//! ```
//! use dbscan::{ClusterSession, Params, PointCloud};
//!
//! let rows: Vec<[f64; 2]> = (0..10).map(|i| [0.1 * i as f64, 0.0]).collect();
//! let params = Params::new(0.25, 3);
//! let shared = ClusterSession::ingest(PointCloud::from_rows(&rows)?)?.share(params)?;
//!
//! // A reader pins generation 0 ...
//! let reader = shared.clone();
//! let g0 = reader.current();
//! assert_eq!(g0.id(), 0);
//!
//! // ... the writer publishes generation 1 ...
//! let far = PointCloud::from_rows(&[[50.0, 50.0]])?;
//! let outcome = shared.update(&far, &[])?;
//! assert_eq!(outcome.generation, 1);
//!
//! // ... and the pinned generation still answers, unchanged.
//! assert_eq!(g0.num_points(), 10);
//! assert_eq!(reader.current().num_points(), 11);
//! # Ok::<(), dbscan::Error>(())
//! ```

use crate::cloud::PointCloud;
use crate::error::Error;
use crate::labels::Labels;
use crate::session::{ClusterSession, QueryOutcome, SweepCell};
use dbscan_stream::UpdateStats;
use pardbscan::{DbscanParams, SweepGrid, VariantConfig};
use std::sync::{Arc, Mutex, MutexGuard};

static GENERATIONS_PUBLISHED: obs::LazyCounter = obs::LazyCounter::with_help(
    "dbscan_generations_published_total",
    "Generations published by concurrent sessions",
);
static PUBLISH_SECONDS: obs::LazyHistogram = obs::LazyHistogram::with_help(
    "dbscan_publish_duration_seconds",
    "Wall time of one generation publish (live-set snapshot + label resolve)",
);

/// One immutable published version of a [`ConcurrentSession`]'s point set.
///
/// Obtained from [`ConcurrentSession::current`] as an `Arc`; every read it
/// answers is consistent with exactly this version, no matter what the
/// writer does concurrently. Queries at parameters other than the
/// maintained ones are served by the generation's own engine caches
/// (`&self`, internally synchronized — concurrent readers share built
/// indexes).
pub struct Generation {
    id: u64,
    params: DbscanParams,
    cloud: PointCloud,
    labels: Labels,
    session: ClusterSession,
}

impl std::fmt::Debug for Generation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Generation")
            .field("id", &self.id)
            .field("num_points", &self.cloud.len())
            .finish_non_exhaustive()
    }
}

impl Generation {
    /// This generation's id: 0 for the ingest generation, +1 per publish.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The maintained parameters ([`Generation::labels`] is their result).
    pub fn params(&self) -> DbscanParams {
        self.params
    }

    /// Number of points in this generation.
    pub fn num_points(&self) -> usize {
        self.cloud.len()
    }

    /// The labels at the maintained parameters, resolved when this
    /// generation was published (no work per fetch). Point order is
    /// ascending stable id — the same order as [`Generation::cloud`].
    pub fn labels(&self) -> &Labels {
        &self.labels
    }

    /// The generation's point set, in label order.
    pub fn cloud(&self) -> &PointCloud {
        &self.cloud
    }

    /// Clusters this generation at arbitrary parameters (cached per
    /// generation across readers). Accepts anything convertible into
    /// [`crate::Params`], including an `(eps, min_pts)` tuple.
    pub fn cluster(&self, params: impl Into<DbscanParams>) -> Result<Labels, Error> {
        self.session.cluster(params)
    }

    /// [`Generation::cluster`] with an explicit variant, returning
    /// per-query statistics. The reported
    /// [`crate::QueryStats::index_generation`] is ≥ this generation's id.
    pub fn query(
        &self,
        params: impl Into<DbscanParams>,
        variant: VariantConfig,
    ) -> Result<QueryOutcome, Error> {
        self.session.query(params, variant)
    }

    /// Sweeps a parameter grid over this generation — anything convertible
    /// into a [`SweepGrid`], e.g. `([0.5, 0.7], [3, 4])`.
    pub fn sweep(&self, grid: impl Into<SweepGrid>) -> Result<Vec<SweepCell>, Error> {
        self.session.sweep(grid)
    }

    /// The indexed session serving this generation, for the remaining
    /// read-only surface (cache stats, EXPLAIN reports).
    pub fn session(&self) -> &ClusterSession {
        &self.session
    }
}

/// Result of one writer batch: the per-batch maintenance statistics and
/// the id of the generation the batch published.
#[derive(Debug)]
pub struct UpdateOutcome {
    /// Id of the newly published generation (readers see it from the
    /// moment this outcome is returned).
    pub generation: u64,
    /// The streaming layer's per-batch statistics.
    pub stats: UpdateStats,
}

/// The single-writer state: a session pinned in streaming mode plus the
/// publish counter.
struct WriterState {
    session: ClusterSession,
    next_generation: u64,
}

struct Shared {
    dim: usize,
    params: DbscanParams,
    /// The published generation. Locked only to clone or swap the `Arc` —
    /// never while indexing, clustering, or applying a batch.
    published: Mutex<Arc<Generation>>,
    /// The writer side. Writers serialize here; readers never take it.
    writer: Mutex<WriterState>,
}

/// A concurrently shareable clustering session: cloneable, `Send + Sync`,
/// one writer path and non-blocking multi-version readers. See the module
/// docs above for the contract and an example.
#[derive(Clone)]
pub struct ConcurrentSession {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ConcurrentSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentSession")
            .field("dim", &self.shared.dim)
            .field("generation", &self.current().id())
            .finish_non_exhaustive()
    }
}

/// Locks a mutex, ignoring poisoning: a panicked writer can only have
/// poisoned state that is re-derived or swapped whole (the published slot
/// holds a fully-constructed generation or the previous one).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ConcurrentSession {
    /// Converts `session` (in indexed mode — i.e. not inside an
    /// [`crate::UpdateHandle`] episode, which the borrow checker already
    /// guarantees) into a concurrent one maintaining `params`.
    /// [`ClusterSession::share`] is the method form.
    pub(crate) fn from_session(
        mut session: ClusterSession,
        params: DbscanParams,
    ) -> Result<Self, Error> {
        let dim = session.dim();
        session.inner.begin_updates(params)?;
        let mut writer = WriterState {
            session,
            next_generation: 0,
        };
        let first = publish_locked(dim, params, &mut writer)?;
        Ok(ConcurrentSession {
            shared: Arc::new(Shared {
                dim,
                params,
                published: Mutex::new(first),
                writer: Mutex::new(writer),
            }),
        })
    }

    /// Ingests `cloud` and shares it, maintaining `params` — shorthand for
    /// [`ClusterSession::ingest`] + [`ClusterSession::share`].
    pub fn ingest(cloud: PointCloud, params: DbscanParams) -> Result<Self, Error> {
        ClusterSession::ingest(cloud)?.share(params)
    }

    /// Durable [`ConcurrentSession::ingest`]: every writer batch is
    /// write-ahead logged under `options` before it is acknowledged, and
    /// [`ConcurrentSession::checkpoint`] persists the live set.
    pub fn ingest_durable(
        cloud: PointCloud,
        dir: impl AsRef<std::path::Path>,
        options: crate::DurableOptions,
        params: DbscanParams,
    ) -> Result<Self, Error> {
        ClusterSession::ingest_durable(cloud, dir, options)?.share(params)
    }

    /// Reopens the durable store at `dir` (recovering acknowledged batches
    /// from its snapshot + WAL) and shares it. Generation ids restart at 0
    /// on reopen; they order versions within one process lifetime.
    pub fn open_durable(
        dir: impl AsRef<std::path::Path>,
        options: crate::DurableOptions,
        params: DbscanParams,
    ) -> Result<Self, Error> {
        ClusterSession::open_durable(dir, options)?.share(params)
    }

    /// The dimensionality of the session's points.
    pub fn dim(&self) -> usize {
        self.shared.dim
    }

    /// The maintained parameters every generation's
    /// [`Generation::labels`] are resolved at.
    pub fn params(&self) -> DbscanParams {
        self.shared.params
    }

    /// The currently published generation. This is the whole read path: an
    /// `Arc` clone under a lock held for a pointer copy, so readers never
    /// wait on index builds or update batches. Hold the returned `Arc` to
    /// pin the version across several reads.
    pub fn current(&self) -> Arc<Generation> {
        lock(&self.shared.published).clone()
    }

    /// Applies one atomic batch through the writer (WAL'd first when the
    /// session is durable) and publishes the resulting generation.
    /// Concurrent updaters serialize; readers are unaffected until the
    /// final pointer swap. On error nothing is applied and the published
    /// generation is unchanged.
    pub fn update(&self, inserts: &PointCloud, deletes: &[usize]) -> Result<UpdateOutcome, Error> {
        if inserts.dim() != self.shared.dim && !inserts.is_empty() {
            return Err(Error::DimensionMismatch {
                expected: self.shared.dim,
                got: inserts.dim(),
            });
        }
        let mut writer = lock(&self.shared.writer);
        let stats = writer.session.inner.apply(inserts.coords(), deletes)?;
        let generation = publish_locked(self.shared.dim, self.shared.params, &mut writer)?;
        let id = generation.id;
        *lock(&self.shared.published) = generation;
        drop(writer);
        Ok(UpdateOutcome {
            generation: id,
            stats,
        })
    }

    /// Re-publishes the writer's current live set as a fresh generation
    /// without applying a batch (useful after a sequence of failed or
    /// external changes; generally [`ConcurrentSession::update`] publishes
    /// for you). Returns the new generation's id.
    pub fn publish(&self) -> Result<u64, Error> {
        let mut writer = lock(&self.shared.writer);
        let generation = publish_locked(self.shared.dim, self.shared.params, &mut writer)?;
        let id = generation.id;
        *lock(&self.shared.published) = generation;
        Ok(id)
    }

    /// Checkpoints a durable session's live set (snapshot + WAL reset), so
    /// the next [`ConcurrentSession::open_durable`] recovers without
    /// replay. A no-op `Ok(())` for non-durable sessions.
    pub fn checkpoint(&self) -> Result<(), Error> {
        lock(&self.shared.writer).session.inner.checkpoint()
    }
}

/// The publish step, under the writer lock: snapshot the live set into an
/// indexed session stamped at the new generation id, resolve the
/// maintained labels, and wrap it all in an [`Arc`]. The caller swaps the
/// result into the published slot.
fn publish_locked(
    dim: usize,
    params: DbscanParams,
    writer: &mut WriterState,
) -> Result<Arc<Generation>, Error> {
    let start = std::time::Instant::now();
    let id = writer.next_generation;
    let generation = {
        let _span = obs::Span::enter("concurrent", obs::phase::PUBLISH)
            .eps(params.eps)
            .min_pts(params.min_pts)
            .n(writer.session.num_points());
        let inner = writer.session.inner.publish_indexed(id)?;
        let labels = writer.session.inner.stream_labels();
        // Live coordinates already passed ingest/update validation, so the
        // re-wrap skips the finiteness re-scan.
        let cloud = PointCloud::trusted(dim, writer.session.inner.live_coords());
        Generation {
            id,
            params,
            cloud,
            labels,
            session: ClusterSession::from_parts(dim, inner),
        }
    };
    writer.next_generation += 1;
    GENERATIONS_PUBLISHED.incr();
    PUBLISH_SECONDS.observe(start.elapsed());
    Ok(Arc::new(generation))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_cloud(n: usize) -> PointCloud {
        let coords: Vec<f64> = (0..n).flat_map(|i| [0.1 * i as f64, 0.0]).collect();
        PointCloud::new(2, coords).unwrap()
    }

    #[test]
    fn generations_are_monotonic_and_immutable() {
        let params = DbscanParams::new(0.25, 3);
        let shared = ConcurrentSession::ingest(line_cloud(12), params).unwrap();
        let g0 = shared.current();
        assert_eq!(g0.id(), 0);
        assert_eq!(g0.num_points(), 12);
        assert_eq!(g0.labels().num_clusters(), 1);

        let far = PointCloud::from_rows(&[[40.0, 0.0], [40.1, 0.0], [40.2, 0.0]]).unwrap();
        let o1 = shared.update(&far, &[]).unwrap();
        assert_eq!(o1.generation, 1);
        assert_eq!(o1.stats.inserted_ids.len(), 3);
        let o2 = shared.update(&PointCloud::empty(2).unwrap(), &[0]).unwrap();
        assert_eq!(o2.generation, 2);

        // The pinned generation 0 is untouched by both updates.
        assert_eq!(g0.num_points(), 12);
        assert_eq!(g0.labels().num_clusters(), 1);
        let g2 = shared.current();
        assert_eq!(g2.id(), 2);
        assert_eq!(g2.num_points(), 14);
        assert_eq!(g2.labels().num_clusters(), 2);
    }

    #[test]
    fn generation_labels_match_offline_run_of_its_cloud() {
        let params = DbscanParams::new(0.25, 3);
        let shared = ConcurrentSession::ingest(line_cloud(30), params).unwrap();
        for step in 0..5 {
            let x = 10.0 + step as f64;
            let batch = PointCloud::from_rows(&[[x, 0.0], [x + 0.1, 0.0], [x + 0.2, 0.0]]).unwrap();
            shared.update(&batch, &[step * 2]).unwrap();
            let gen = shared.current();
            let offline = crate::cluster(gen.cloud(), params).unwrap();
            assert_eq!(gen.labels(), &offline, "generation {}", gen.id());
            // The generation's own indexed session agrees too.
            assert_eq!(gen.cluster(params).unwrap(), offline);
        }
    }

    #[test]
    fn queries_on_a_generation_carry_its_stamp() {
        let params = DbscanParams::new(0.25, 3);
        let shared = ConcurrentSession::ingest(line_cloud(10), params).unwrap();
        shared.update(&line_cloud(3), &[]).unwrap();
        shared.update(&line_cloud(3), &[]).unwrap();
        let gen = shared.current();
        assert_eq!(gen.id(), 2);
        let outcome = gen.query(params, VariantConfig::exact()).unwrap();
        assert!(
            outcome.stats.index_generation >= gen.id(),
            "index generation {} should be stamped at or past the published id {}",
            outcome.stats.index_generation,
            gen.id()
        );
    }

    #[test]
    fn failed_updates_publish_nothing() {
        let params = DbscanParams::new(0.25, 3);
        let shared = ConcurrentSession::ingest(line_cloud(8), params).unwrap();
        let wrong_dim = PointCloud::new(3, vec![0.0; 3]).unwrap();
        assert!(matches!(
            shared.update(&wrong_dim, &[]),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(matches!(
            shared.update(&PointCloud::empty(2).unwrap(), &[99]),
            Err(Error::UnknownPoint(99))
        ));
        assert_eq!(shared.current().id(), 0, "failed updates publish nothing");
        // The writer stays serviceable after failures.
        assert_eq!(shared.update(&line_cloud(1), &[]).unwrap().generation, 1);
    }

    #[test]
    fn explicit_publish_bumps_the_generation() {
        let params = DbscanParams::new(0.25, 3);
        let shared = ConcurrentSession::ingest(line_cloud(5), params).unwrap();
        assert_eq!(shared.publish().unwrap(), 1);
        assert_eq!(shared.current().id(), 1);
        assert_eq!(shared.current().num_points(), 5);
    }
}
