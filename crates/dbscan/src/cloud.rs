//! Runtime-dimension point storage with ingest-time validation.
//!
//! The monomorphized pipelines underneath this crate quantize coordinates
//! into grid cell keys with `(x / side).floor() as i64` — an operation that
//! *silently corrupts* the key when `x` is NaN or infinite (the cast
//! saturates, so bad points land in arbitrary cells instead of failing).
//! [`PointCloud`] is where that class of bug is stopped: every constructor
//! validates finiteness and arity once, so everything downstream — one-shot
//! runs, engine sweeps, streaming updates — can assume clean input.

use crate::error::Error;

/// A set of points whose dimensionality is a runtime value.
///
/// Coordinates are stored flat and row-major (`dim` consecutive values per
/// point), the natural shape of a parsed CSV or JSON payload. Construction
/// validates every coordinate (finite) and the buffer arity (a whole number
/// of points), returning a typed [`Error`] instead of corrupting grid state
/// later.
///
/// ```
/// use dbscan::PointCloud;
///
/// let mut cloud = PointCloud::new(2, vec![0.0, 0.0, 1.0, 1.0])?;
/// cloud.push(&[2.0, 2.0])?;
/// assert_eq!((cloud.dim(), cloud.len()), (2, 3));
/// assert_eq!(cloud.point(2), &[2.0, 2.0]);
///
/// // Bad input fails at ingest, with a typed error.
/// assert!(PointCloud::new(2, vec![0.0, f64::NAN]).is_err());
/// assert!(PointCloud::new(2, vec![0.0, 0.0, 1.0]).is_err());
/// assert!(cloud.push(&[1.0, 2.0, 3.0]).is_err());
/// # Ok::<(), dbscan::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PointCloud {
    dim: usize,
    coords: Vec<f64>,
}

impl PointCloud {
    /// Wraps a flat row-major coordinate buffer (`dim` consecutive values
    /// per point). Fails if `dim` is zero, the buffer does not divide into
    /// `dim`-dimensional points, or any coordinate is non-finite.
    pub fn new(dim: usize, coords: Vec<f64>) -> Result<Self, Error> {
        if dim == 0 {
            return Err(Error::UnsupportedDimension(0));
        }
        if !coords.len().is_multiple_of(dim) {
            return Err(Error::RaggedCoordinates {
                len: coords.len(),
                dim,
            });
        }
        validate_finite(&coords, dim, 0)?;
        Ok(PointCloud { dim, coords })
    }

    /// An empty cloud of the given dimensionality (points can be
    /// [`PointCloud::push`]ed later).
    pub fn empty(dim: usize) -> Result<Self, Error> {
        PointCloud::new(dim, Vec::new())
    }

    /// Builds a cloud from per-point rows, inferring the dimensionality
    /// from the first row. Fails with [`Error::EmptyCloud`] when there is
    /// no row to infer from, and with [`Error::DimensionMismatch`] when the
    /// rows disagree about their arity.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Result<Self, Error> {
        let first = rows.first().ok_or(Error::EmptyCloud)?;
        let mut cloud = PointCloud::empty(first.as_ref().len())?;
        for row in rows {
            cloud.push(row.as_ref())?;
        }
        Ok(cloud)
    }

    /// Appends one point, returning its index. Fails on arity mismatch or a
    /// non-finite coordinate; the cloud is unchanged on error.
    pub fn push(&mut self, point: &[f64]) -> Result<usize, Error> {
        if point.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        validate_finite(point, self.dim, self.len())?;
        self.coords.extend_from_slice(point);
        Ok(self.len() - 1)
    }

    /// The dimensionality of every point in the cloud.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len() / self.dim
    }

    /// Returns `true` if the cloud holds no points.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The coordinates of point `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole flat row-major coordinate buffer.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Wraps a buffer the caller *guarantees* already satisfies the cloud
    /// invariants (coordinates that previously passed validation, e.g. the
    /// live set read back out of a streaming session) without re-scanning
    /// it. Crate-private: external input must go through [`PointCloud::new`].
    pub(crate) fn trusted(dim: usize, coords: Vec<f64>) -> Self {
        debug_assert!(PointCloud::new(dim, coords.clone()).is_ok());
        PointCloud { dim, coords }
    }
}

/// Rejects NaN/infinite coordinates in a flat buffer, reporting the
/// offending point (offset by `first_point`, so pushes report the cloud
/// index) and axis. The single copy of the finiteness policy — every
/// ingest path (cloud construction, pushes, streaming inserts) calls it.
pub(crate) fn validate_finite(coords: &[f64], dim: usize, first_point: usize) -> Result<(), Error> {
    for (i, &c) in coords.iter().enumerate() {
        if !c.is_finite() {
            return Err(Error::NonFiniteCoordinate {
                point: first_point + i / dim,
                axis: Some(i % dim),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let cloud = PointCloud::new(3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(cloud.dim(), 3);
        assert_eq!(cloud.len(), 2);
        assert!(!cloud.is_empty());
        assert_eq!(cloud.point(1), &[4.0, 5.0, 6.0]);
        assert_eq!(cloud.coords().len(), 6);
        assert!(PointCloud::empty(5).unwrap().is_empty());
    }

    #[test]
    fn from_rows_infers_dimension_and_rejects_ragged_rows() {
        let cloud = PointCloud::from_rows(&[[0.0, 1.0], [2.0, 3.0]]).unwrap();
        assert_eq!((cloud.dim(), cloud.len()), (2, 2));
        assert_eq!(
            PointCloud::from_rows::<Vec<f64>>(&[]).unwrap_err(),
            Error::EmptyCloud
        );
        let rows: Vec<Vec<f64>> = vec![vec![0.0, 1.0], vec![2.0, 3.0, 4.0]];
        assert_eq!(
            PointCloud::from_rows(&rows).unwrap_err(),
            Error::DimensionMismatch {
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn validation_pinpoints_the_offending_coordinate() {
        assert_eq!(
            PointCloud::new(2, vec![0.0, 0.0, 1.0, f64::NAN]).unwrap_err(),
            Error::NonFiniteCoordinate {
                point: 1,
                axis: Some(1)
            }
        );
        assert_eq!(
            PointCloud::new(3, vec![0.0, f64::INFINITY, 0.0]).unwrap_err(),
            Error::NonFiniteCoordinate {
                point: 0,
                axis: Some(1)
            }
        );
        let mut cloud = PointCloud::new(2, vec![0.0, 0.0]).unwrap();
        assert_eq!(
            cloud.push(&[f64::NEG_INFINITY, 0.0]).unwrap_err(),
            Error::NonFiniteCoordinate {
                point: 1,
                axis: Some(0)
            }
        );
        assert_eq!(cloud.len(), 1, "failed push must not mutate the cloud");
    }

    #[test]
    fn degenerate_dimensions_are_rejected() {
        assert_eq!(
            PointCloud::new(0, vec![]).unwrap_err(),
            Error::UnsupportedDimension(0)
        );
        assert_eq!(
            PointCloud::new(2, vec![1.0]).unwrap_err(),
            Error::RaggedCoordinates { len: 1, dim: 2 }
        );
    }
}
