//! The facade's single result type.
//!
//! One-shot runs, engine queries, sweep grid cells and streaming reads all
//! produce the same thing: a [`Labels`] wrapping the pipeline's canonical
//! [`Clustering`]. Because the wrapped clustering is canonically renumbered
//! (cluster `k` is the one whose first core point appears earliest), two
//! `Labels` over the same points compare equal with `==` exactly when they
//! describe the same partition — whichever of the three paths produced
//! each.

use pardbscan::{Clustering, PointLabel};

/// Per-point cluster labels, identical in shape across the one-shot, sweep
/// and streaming paths.
///
/// Point `i` refers to the `i`-th point of the labelled set: the ingest
/// order of the session's [`crate::PointCloud`] for one-shot and sweep
/// results, and ascending stable-id order for streaming reads (the order
/// [`crate::UpdateHandle::live_ids`] reports).
#[derive(Debug, Clone, PartialEq)]
pub struct Labels {
    clustering: Clustering,
}

impl Labels {
    /// Number of labelled points.
    pub fn len(&self) -> usize {
        self.clustering.len()
    }

    /// Returns `true` if no points were labelled.
    pub fn is_empty(&self) -> bool {
        self.clustering.is_empty()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clustering.num_clusters()
    }

    /// Number of noise points.
    pub fn num_noise(&self) -> usize {
        self.clustering.num_noise()
    }

    /// Number of core points.
    pub fn num_core_points(&self) -> usize {
        self.clustering.num_core_points()
    }

    /// Whether point `i` is a core point.
    pub fn is_core(&self, i: usize) -> bool {
        self.clustering.is_core(i)
    }

    /// Whether point `i` is noise.
    pub fn is_noise(&self, i: usize) -> bool {
        self.clustering.is_noise(i)
    }

    /// The set of clusters point `i` belongs to (empty for noise; one id
    /// for core points; one or more for border points).
    pub fn clusters_of(&self, i: usize) -> &[usize] {
        self.clustering.clusters_of(i)
    }

    /// The full label of point `i` (core / border / noise).
    pub fn label(&self, i: usize) -> PointLabel {
        self.clustering.label(i)
    }

    /// Flattened per-point labels: the smallest cluster id for clustered
    /// points, −1 for noise.
    pub fn primary(&self) -> Vec<i64> {
        self.clustering.primary_labels()
    }

    /// Compact JSON serialization of the label array, the shape the
    /// `dbscan-serve` responses embed:
    ///
    /// ```json
    /// {"len": 3, "num_clusters": 1, "num_noise": 1,
    ///  "primary": [0, 0, -1], "core": [1, 0, 0]}
    /// ```
    ///
    /// `primary` is [`Labels::primary`] (smallest cluster id per point, −1
    /// for noise); `core` is the per-point core flag as `0`/`1`. Border
    /// points in several clusters are flattened to their smallest id —
    /// the full multi-membership stays available in-process through
    /// [`Labels::clusters_of`]. The summary counts come first so a reader
    /// can size buffers before scanning the arrays.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.len() * 4);
        out.push_str(&format!(
            "{{\"len\": {}, \"num_clusters\": {}, \"num_noise\": {}, \"primary\": [",
            self.len(),
            self.num_clusters(),
            self.num_noise()
        ));
        for (i, label) in self.primary().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&label.to_string());
        }
        out.push_str("], \"core\": [");
        for i in 0..self.len() {
            if i > 0 {
                out.push(',');
            }
            out.push(if self.is_core(i) { '1' } else { '0' });
        }
        out.push_str("]}");
        out
    }

    /// The wrapped canonical clustering, for callers dropping down to the
    /// per-crate APIs.
    pub fn as_clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Unwraps into the canonical clustering.
    pub fn into_clustering(self) -> Clustering {
        self.clustering
    }
}

impl From<Clustering> for Labels {
    fn from(clustering: Clustering) -> Self {
        Labels { clustering }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegation_matches_the_wrapped_clustering() {
        let clustering =
            Clustering::from_raw(vec![true, false, false], vec![vec![5], vec![5], vec![]]);
        let labels = Labels::from(clustering.clone());
        assert_eq!(labels.len(), 3);
        assert_eq!(labels.num_clusters(), 1);
        assert_eq!(labels.num_noise(), 1);
        assert_eq!(labels.num_core_points(), 1);
        assert!(labels.is_core(0) && !labels.is_core(1));
        assert!(labels.is_noise(2));
        assert_eq!(labels.clusters_of(1), &[0]);
        assert_eq!(labels.label(0), PointLabel::Core(0));
        assert_eq!(labels.primary(), vec![0, 0, -1]);
        assert_eq!(labels.as_clustering(), &clustering);
        assert_eq!(labels.into_clustering(), clustering);
    }

    #[test]
    fn to_json_round_trips_through_the_workspace_reader() {
        let clustering =
            Clustering::from_raw(vec![true, false, false], vec![vec![5], vec![5], vec![]]);
        let labels = Labels::from(clustering);
        let doc = jsonv::parse(&labels.to_json()).expect("to_json emits valid JSON");
        assert_eq!(doc.get("len").and_then(jsonv::Value::as_f64), Some(3.0));
        assert_eq!(
            doc.get("num_clusters").and_then(jsonv::Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            doc.get("num_noise").and_then(jsonv::Value::as_f64),
            Some(1.0)
        );
        let primary: Vec<i64> = doc
            .get("primary")
            .and_then(jsonv::Value::as_array)
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap() as i64)
            .collect();
        assert_eq!(primary, labels.primary());
        let core: Vec<bool> = doc
            .get("core")
            .and_then(jsonv::Value::as_array)
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap() != 0.0)
            .collect();
        assert_eq!(core, vec![true, false, false]);
    }

    #[test]
    fn empty_labels_serialize_to_empty_arrays() {
        let labels = Labels::from(Clustering::from_raw(vec![], vec![]));
        assert_eq!(
            labels.to_json(),
            "{\"len\": 0, \"num_clusters\": 0, \"num_noise\": 0, \
             \"primary\": [], \"core\": []}"
        );
    }
}
