//! # dbscan — one front door for the parallel DBSCAN workspace
//!
//! The pipelines underneath this crate (the four-phase algorithm of Wang,
//! Gu & Shun's SIGMOD 2020 paper, the index-once/query-many engine, the
//! streaming clusterer) are monomorphized on a compile-time dimension
//! `const D: usize` — the right call for the hot loops, and the wrong shape
//! for a service whose point dimensionality arrives at runtime in a CSV
//! upload or a JSON body. This crate erases that dimension once, at the
//! boundary, and unifies the three entry points behind a single session:
//!
//! * [`PointCloud`] — flat `Vec<f64>` plus a runtime `dim`, validated at
//!   construction (finite coordinates, consistent arity) with a typed
//!   [`Error`] instead of silently corrupted grid keys later;
//! * [`ClusterSession`] — ingest → index → query → sweep →
//!   streaming-update as one lifecycle, dispatching to the monomorphized
//!   pipelines for dimensions 2..=8 through a macro-generated jump table
//!   (anything else reports [`Error::UnsupportedDimension`]);
//! * [`Labels`] — one result type wrapping the canonical
//!   [`pardbscan::Clustering`], identical across the one-shot
//!   ([`ClusterSession::cluster`]), sweep ([`ClusterSession::sweep`]) and
//!   streaming ([`ClusterSession::updates`]) paths.
//!
//! The batch and incremental modes are two faces of the same query — the
//! dynamic-evaluation framing of Berkholz, Keppeler & Schweikardt
//! ("Answering FO+MOD queries under updates") — so the session exposes
//! them as modes of one handle rather than separate products: a streaming
//! [`UpdateHandle`] borrows the session exclusively and freezes back into
//! it on drop.
//!
//! The statically-typed per-crate APIs ([`pardbscan::Dbscan`],
//! [`engine::Engine`], [`stream::StreamingClusterer`]) remain available as
//! the advanced interface — for compile-time dimensions (including d > 8),
//! phase-granular control, and zero-overhead embedding.
//!
//! ## Quick start
//!
//! ```
//! use dbscan::{cluster, ClusterSession, Params, PointCloud};
//!
//! // Dimensionality is data, not a type parameter: three 3D points.
//! let cloud = PointCloud::new(3, vec![
//!     0.0, 0.0, 0.0,
//!     0.1, 0.0, 0.0,
//!     9.0, 9.0, 9.0,
//! ])?;
//!
//! // One-shot, no session state kept.
//! let labels = cluster(&cloud, Params::new(0.5, 2))?;
//! assert_eq!(labels.num_clusters(), 1);
//! assert!(labels.is_noise(2));
//!
//! // The same cloud behind a session: repeated queries reuse phase state.
//! let session = ClusterSession::ingest(cloud)?;
//! assert_eq!(session.cluster(Params::new(0.5, 2))?, labels);
//! # Ok::<(), dbscan::Error>(())
//! ```
//!
//! See [`ClusterSession`] for the sweep and streaming examples.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cloud;
mod concurrent;
mod error;
mod labels;
mod session;

pub use cloud::PointCloud;
pub use concurrent::{ConcurrentSession, Generation, UpdateOutcome};
pub use error::Error;
pub use labels::Labels;
pub use session::{ClusterSession, QueryOutcome, SessionBuilder, SweepCell, UpdateHandle};

/// The DBSCAN parameters (ε, minPts) — the pipeline's
/// [`pardbscan::DbscanParams`], re-exported as the facade's parameter type.
/// Every parameter-taking entry point accepts `impl Into<Params>`, so a
/// plain `(eps, min_pts)` tuple works wherever a `Params` does.
pub use pardbscan::DbscanParams as Params;

/// A parameter grid for [`ClusterSession::sweep`]: ε values × minPts
/// values, plus the algorithm variant to run them under. Build one with
/// [`SweepGrid::new`] or convert from a tuple of arrays/slices/vecs.
pub use pardbscan::SweepGrid;

/// Configuration of the cell-graph-sharded clustering path — see
/// [`SessionBuilder::shard`] and [`ClusterSession::cluster_sharded`].
pub use dbscan_shard::ShardConfig;

/// Statistics of one sharded clustering run (boundary-cell/edge counts,
/// per-phase wall times including the merge phase).
pub use dbscan_shard::ShardStats;

/// The cell-graph-sharded clustering crate (shard-local phases plus the
/// boundary-edge merge coordinator) — the advanced statically-typed
/// interface behind [`SessionBuilder::shard`].
pub use dbscan_shard as shard;

/// Per-point label detail (core / border / noise), re-exported from the
/// pipeline.
pub use pardbscan::PointLabel;

/// Algorithm-variant selection for [`ClusterSession::query`] and
/// [`SweepGrid::variant`], re-exported from the pipeline.
pub use pardbscan::VariantConfig;

/// Per-query statistics (phase timings, cache-reuse flags), re-exported
/// from the engine.
pub use dbscan_engine::QueryStats;

/// Cumulative cache counters of a session, re-exported from the engine.
pub use dbscan_engine::CacheStats;

/// Per-update-batch statistics, re-exported from the streaming crate.
pub use dbscan_stream::UpdateStats;

/// Durability knobs for [`ClusterSession::ingest_durable`] /
/// [`ClusterSession::open_durable`] — WAL fsync policy and checkpoint
/// cadence, re-exported from the durable crate.
pub use dbscan_durable::{DurableOptions, FsyncPolicy};

/// The durability crate (snapshot persistence, write-ahead logging, crash
/// recovery, fault injection) — the advanced statically-typed interface
/// behind the durable session paths.
pub use dbscan_durable as durable;

/// The engine crate (snapshots, explicit cache control) — the advanced
/// statically-typed interface behind [`ClusterSession`]'s query and sweep
/// paths.
pub use dbscan_engine as engine;

/// The streaming crate (incremental maintenance) — the advanced
/// statically-typed interface behind [`ClusterSession::updates`].
pub use dbscan_stream as stream;

/// The core pipeline crate (one-shot runs, phase-granular state) — the
/// advanced statically-typed interface behind [`cluster`].
pub use pardbscan;

/// The observability substrate behind [`ClusterSession::metrics`] and
/// [`ClusterSession::take_trace`] — re-exported so downstream users can name
/// its types (reports, span records, phase constants) without a direct
/// dependency.
pub use obs;

/// One-shot exact DBSCAN over a runtime-dimension point cloud: the
/// dimension-erased counterpart of [`pardbscan::dbscan`], dispatched
/// through the core crate's sealed [`pardbscan::ErasedPipeline`] jump
/// table. No session state is built or kept; for repeated queries over the
/// same points, open a [`ClusterSession`] instead.
///
/// ```
/// use dbscan::{cluster, Params, PointCloud};
///
/// let cloud = PointCloud::from_rows(&[[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]])?;
/// let labels = cluster(&cloud, Params::new(0.15, 2))?;
/// assert_eq!(labels.num_clusters(), 1);
/// # Ok::<(), dbscan::Error>(())
/// ```
pub fn cluster(cloud: &PointCloud, params: impl Into<Params>) -> Result<Labels, Error> {
    cluster_variant(cloud, params.into(), VariantConfig::exact())
}

/// Publishes the process's runtime dispatch decisions as registry `info`
/// metrics: `dbscan_backend_info{value="…"}` (the distance-kernel backend
/// [`pardbscan::active_backend`] resolved to on this machine) and
/// `dbscan_obs_mode_info{value="…"}` (the `DBSCAN_OBS` observability
/// mode). Both are otherwise only queryable in-process; calling this at
/// startup makes them visible to every `/metrics` scrape. Idempotent;
/// no-op under `DBSCAN_OBS=off` like every other registry write.
pub fn register_runtime_info() {
    obs::set_info("dbscan_backend_info", pardbscan::active_backend().label());
    obs::set_info("dbscan_obs_mode_info", obs::mode().label());
}

/// [`cluster`] with an explicit algorithm variant.
pub fn cluster_variant(
    cloud: &PointCloud,
    params: Params,
    variant: VariantConfig,
) -> Result<Labels, Error> {
    let pipeline =
        pardbscan::erased_pipeline(cloud.dim()).ok_or(Error::UnsupportedDimension(cloud.dim()))?;
    let clustering = pipeline.cluster(cloud.coords(), params, variant)?;
    Ok(Labels::from(clustering))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_matches_session_across_dimensions() {
        for dim in [2usize, 3, 4, 7] {
            let coords: Vec<f64> = (0..dim * 30)
                .map(|i| 0.04 * (i / dim) as f64 + 0.01 * (i % dim) as f64)
                .collect();
            let cloud = PointCloud::new(dim, coords).unwrap();
            let params = Params::new(0.6, 3);
            let one_shot = cluster(&cloud, params).unwrap();
            let session = ClusterSession::ingest(cloud).unwrap();
            assert_eq!(session.cluster(params).unwrap(), one_shot, "dim {dim}");
        }
    }

    #[test]
    fn one_shot_rejects_unsupported_dimensions() {
        let cloud = PointCloud::new(9, vec![0.0; 18]).unwrap();
        assert_eq!(
            cluster(&cloud, Params::new(1.0, 2)).unwrap_err(),
            Error::UnsupportedDimension(9)
        );
    }

    #[test]
    fn variant_selection_passes_through() {
        let cloud = PointCloud::from_rows(&[[0.0, 0.0], [0.1, 0.1], [5.0, 5.0]]).unwrap();
        let exact = cluster(&cloud, Params::new(0.3, 2)).unwrap();
        let qt = cluster_variant(&cloud, Params::new(0.3, 2), VariantConfig::exact_qt()).unwrap();
        assert_eq!(exact, qt);
        // 2D-only methods stay rejected for other dimensions, through the
        // facade's typed error.
        let cloud3 = PointCloud::new(3, vec![0.0; 9]).unwrap();
        assert!(matches!(
            cluster_variant(
                &cloud3,
                Params::new(0.3, 2),
                VariantConfig::two_d(pardbscan::CellMethod::Box, pardbscan::CellGraphMethod::Bcp)
            ),
            Err(Error::RequiresTwoDimensions(_))
        ));
    }
}
