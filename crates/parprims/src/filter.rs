//! Parallel filter (a.k.a. pack): keep the elements satisfying a predicate,
//! preserving their input order. O(n) work, O(log n) depth.
//!
//! The paper uses filter to discard Delaunay edges longer than ε, to drop
//! points further than ε from a neighbouring cell before a BCP computation,
//! and inside the integer sort.

use crate::prefix::prefix_sum_inplace;
use crate::util::block_ranges;
use rayon::prelude::*;

/// Returns the elements of `input` for which `pred` holds, in input order.
pub fn filter<T, F>(input: &[T], pred: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    filter_indexed(input, |_, v| pred(v))
        .into_iter()
        .map(|(_, v)| v)
        .collect()
}

/// Like [`filter`], but the predicate also receives the element index and the
/// output carries `(index, element)` pairs. Useful when the caller needs to
/// know *where* the survivors came from (e.g. which point ids survived the
/// ε-distance pre-filter before a BCP call).
pub fn filter_indexed<T, F>(input: &[T], pred: F) -> Vec<(usize, T)>
where
    T: Clone + Send + Sync,
    F: Fn(usize, &T) -> bool + Sync,
{
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let ranges = block_ranges(n, 1024);
    // Phase 1: count the survivors per block.
    let mut counts: Vec<usize> = ranges
        .par_iter()
        .map(|&(s, e)| (s..e).filter(|&i| pred(i, &input[i])).count())
        .collect();
    let total = prefix_sum_inplace(&mut counts);
    // Phase 2: each block writes its survivors at its offset.
    let mut out: Vec<Option<(usize, T)>> = vec![None; total];
    let out_blocks = split_counts(&mut out, &counts, total);
    out_blocks
        .into_par_iter()
        .zip(ranges.par_iter())
        .for_each(|(out_block, &(s, e))| {
            let mut k = 0usize;
            for (i, item) in input.iter().enumerate().take(e).skip(s) {
                if pred(i, item) {
                    out_block[k] = Some((i, item.clone()));
                    k += 1;
                }
            }
        });
    out.into_iter()
        .map(|o| o.expect("filter slot filled"))
        .collect()
}

/// Returns the number of elements satisfying `pred` (a filter without the
/// write pass).
pub fn count_if<T, F>(input: &[T], pred: F) -> usize
where
    T: Sync,
    F: Fn(&T) -> bool + Sync,
{
    let ranges = block_ranges(input.len(), 2048);
    ranges
        .par_iter()
        .map(|&(s, e)| input[s..e].iter().filter(|v| pred(v)).count())
        .sum()
}

/// Partitions the indices `0..n` into those satisfying `pred` and those not,
/// each in increasing order. Used to split cells into "core" and "non-core"
/// work lists.
pub fn partition_indices<F>(n: usize, pred: F) -> (Vec<usize>, Vec<usize>)
where
    F: Fn(usize) -> bool + Sync,
{
    let idx: Vec<usize> = (0..n).collect();
    let yes = filter(&idx, |&i| pred(i));
    let no = filter(&idx, |&i| !pred(i));
    (yes, no)
}

/// Splits `out` into per-block sub-slices where block `b` starts at
/// `offsets[b]` and the final block ends at `total`.
fn split_counts<'a, T>(out: &'a mut [T], offsets: &[usize], total: usize) -> Vec<&'a mut [T]> {
    let mut result = Vec::with_capacity(offsets.len());
    let mut rest = out;
    let mut consumed = 0usize;
    for b in 0..offsets.len() {
        let end = if b + 1 < offsets.len() {
            offsets[b + 1]
        } else {
            total
        };
        let len = end - offsets[b];
        debug_assert_eq!(offsets[b], consumed);
        let (head, tail) = rest.split_at_mut(len);
        result.push(head);
        rest = tail;
        consumed = end;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_preserves_order() {
        let input: Vec<u32> = (0..10_000).collect();
        let got = filter(&input, |&x| x % 3 == 0);
        let want: Vec<u32> = input.iter().copied().filter(|x| x % 3 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn filter_empty_and_all_and_none() {
        let empty: Vec<u32> = Vec::new();
        assert!(filter(&empty, |_| true).is_empty());
        let input: Vec<u32> = (0..1000).collect();
        assert_eq!(filter(&input, |_| true), input);
        assert!(filter(&input, |_| false).is_empty());
    }

    #[test]
    fn filter_indexed_reports_original_positions() {
        let input = vec![10, 20, 30, 40, 50];
        let got = filter_indexed(&input, |i, _| i % 2 == 1);
        assert_eq!(got, vec![(1, 20), (3, 40)]);
    }

    #[test]
    fn count_if_matches_filter_len() {
        let input: Vec<u64> = (0..25_000).map(|i| i * i % 97).collect();
        assert_eq!(
            count_if(&input, |&x| x < 50),
            filter(&input, |&x| x < 50).len()
        );
    }

    #[test]
    fn partition_indices_is_a_partition() {
        let n = 5000;
        let (yes, no) = partition_indices(n, |i| i % 7 == 0);
        assert_eq!(yes.len() + no.len(), n);
        let mut all: Vec<usize> = yes.iter().chain(no.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
        assert!(yes.windows(2).all(|w| w[0] < w[1]));
        assert!(no.windows(2).all(|w| w[0] < w[1]));
    }
}
