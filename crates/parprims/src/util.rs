//! Small helpers shared by the primitives: block decomposition and grain
//! sizing for the two-pass (count, then write) parallel patterns.

use rayon::prelude::*;

/// Number of worker threads in the current rayon pool.
pub fn num_threads() -> usize {
    rayon::current_num_threads().max(1)
}

/// A grain size that yields roughly 8 blocks per worker thread for an input
/// of length `n`, but never below `min_grain`. Over-decomposing by a small
/// constant factor keeps the work-stealing scheduler busy without paying a
/// per-element task cost.
pub fn grain_size(n: usize, min_grain: usize) -> usize {
    let target_blocks = num_threads() * 8;
    (n / target_blocks.max(1)).max(min_grain).max(1)
}

/// Splits `0..n` into contiguous blocks of roughly `grain_size(n, min_grain)`
/// elements and returns the block boundaries `(start, end)` in order.
pub fn block_ranges(n: usize, min_grain: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let grain = grain_size(n, min_grain);
    let nblocks = n.div_ceil(grain);
    (0..nblocks)
        .map(|b| {
            let start = b * grain;
            let end = ((b + 1) * grain).min(n);
            (start, end)
        })
        .collect()
}

/// Applies `f` to every block of `0..n` in parallel, collecting one result
/// per block in block order. This is the skeleton of the two-pass primitives
/// (prefix sum, filter, integer sort): phase one computes per-block summaries,
/// phase two writes using per-block offsets.
pub fn par_blocks<T: Send>(
    n: usize,
    min_grain: usize,
    f: impl Fn(usize, usize) -> T + Sync,
) -> Vec<T> {
    block_ranges(n, min_grain)
        .into_par_iter()
        .map(|(s, e)| f(s, e))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ranges_cover_input_exactly() {
        for n in [0usize, 1, 7, 100, 1023, 4096] {
            let ranges = block_ranges(n, 16);
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for (s, e) in &ranges {
                assert_eq!(*s, prev_end, "blocks must be contiguous");
                assert!(e > s);
                covered += e - s;
                prev_end = *e;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn grain_size_respects_minimum() {
        assert!(grain_size(10, 64) >= 64);
        assert!(grain_size(1_000_000, 64) >= 64);
        assert!(grain_size(0, 1) >= 1);
    }

    #[test]
    fn par_blocks_returns_one_result_per_block() {
        let n = 10_000;
        let sums = par_blocks(n, 32, |s, e| (s..e).sum::<usize>());
        let total: usize = sums.iter().sum();
        assert_eq!(total, n * (n - 1) / 2);
    }
}
