//! Parallel semisort: group key-value pairs by key, with no guarantee on the
//! order of the groups. O(n) expected work, O(log n) depth w.h.p.
//!
//! This is the primitive the paper uses to build the grid in §4.1: the keys
//! are cell ids and the values are point ids; a comparison sort would cost
//! O(n log n) and break work-efficiency, so the pairs are only *grouped*.
//!
//! Following the structure of Gu–Shun–Sun–Blelloch semisort, we hash the
//! keys, scatter pairs into buckets by hash prefix in parallel (a counting
//! pass + a write pass), and then group within each bucket. The number of
//! buckets is Θ(#threads²), so each bucket is processed serially without
//! hurting the depth bound in practice.

use crate::util::{block_ranges, num_threads};
use rayon::prelude::*;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};

/// Result of a semisort: the reordered pairs plus the boundaries of each
/// group. Group `i` occupies `pairs[group_starts[i]..group_starts[i+1]]`
/// (with an implicit final boundary at `pairs.len()`), and every pair in a
/// group has the same key.
#[derive(Debug, Clone)]
pub struct GroupedByKey<K, V> {
    /// The key-value pairs, grouped so that equal keys are contiguous.
    pub pairs: Vec<(K, V)>,
    /// Start index of each group in `pairs`, in increasing order.
    pub group_starts: Vec<usize>,
}

impl<K, V> GroupedByKey<K, V> {
    /// Number of distinct keys (groups).
    pub fn num_groups(&self) -> usize {
        self.group_starts.len()
    }

    /// Iterates over groups as `(key, values-slice)` where the slice contains
    /// the whole `(key, value)` pairs of that group.
    pub fn groups(&self) -> impl Iterator<Item = &[(K, V)]> {
        (0..self.group_starts.len()).map(move |i| self.group(i))
    }

    /// Returns group `i` as a slice of `(key, value)` pairs.
    pub fn group(&self, i: usize) -> &[(K, V)] {
        let start = self.group_starts[i];
        let end = self
            .group_starts
            .get(i + 1)
            .copied()
            .unwrap_or(self.pairs.len());
        &self.pairs[start..end]
    }
}

#[derive(Default)]
struct FxLikeHasher(u64);

impl Hasher for FxLikeHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // A simple multiply-xor mix; only used to spread keys across buckets.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
}

fn hash_key<K: Hash>(key: &K) -> u64 {
    // Final avalanche so that taking the low bits for bucketing is safe.
    let mut x = BuildHasherDefault::<FxLikeHasher>::default().hash_one(key);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// Groups `pairs` by key. Pairs with equal keys become contiguous in the
/// output; the relative order of groups (and of pairs within a group) is
/// unspecified, exactly as in the paper's semisort primitive.
///
/// Implementation notes (the flat, allocation-lean layout the grid build
/// sits on): keys are hashed **once** into a flat array; the bucket scatter
/// is expressed as a `u32` inverse permutation (no `Option` slots, no
/// per-write buffering of cloned pairs); and the within-bucket grouping
/// sorts small index runs by the precomputed hash instead of building a
/// `HashMap` of per-key `Vec`s. Equal keys always share a hash and a
/// bucket, so groups never straddle buckets; the (astronomically rare)
/// distinct-keys-equal-hash collision is handled by sub-grouping a run with
/// direct key comparisons.
pub fn semisort_by_key<K, V>(pairs: Vec<(K, V)>) -> GroupedByKey<K, V>
where
    K: Hash + Eq + Clone + Send + Sync,
    V: Send + Sync + Clone,
{
    let n = pairs.len();
    if n == 0 {
        return GroupedByKey {
            pairs,
            group_starts: Vec::new(),
        };
    }
    assert!(
        u32::try_from(n).is_ok(),
        "semisort supports up to 2^32 pairs"
    );

    let nbuckets = (num_threads() * num_threads() * 4)
        .clamp(16, 4096)
        .next_power_of_two();
    let mask = (nbuckets - 1) as u64;
    let ranges = block_ranges(n, 2048);

    // Phase 1: hash every key once.
    let hashes: Vec<u64> = pairs.par_iter().map(|(k, _)| hash_key(k)).collect();

    // Phase 2: count pairs per (block, bucket), then turn the counts into
    // per-(block, bucket) write cursors.
    let counts: Vec<Vec<u32>> = ranges
        .par_iter()
        .map(|&(s, e)| {
            let mut c = vec![0u32; nbuckets];
            for &h in &hashes[s..e] {
                c[(h & mask) as usize] += 1;
            }
            c
        })
        .collect();
    let mut bucket_starts = vec![0usize; nbuckets + 1];
    for c in &counts {
        for (b, &v) in c.iter().enumerate() {
            bucket_starts[b + 1] += v as usize;
        }
    }
    for b in 0..nbuckets {
        bucket_starts[b + 1] += bucket_starts[b];
    }
    let slot_offset: Vec<Vec<usize>> = {
        let mut cursor = bucket_starts[..nbuckets].to_vec();
        counts
            .iter()
            .map(|c| {
                let mut offsets = Vec::with_capacity(nbuckets);
                for (cur, &count) in cursor.iter_mut().zip(c) {
                    offsets.push(*cur);
                    *cur += count as usize;
                }
                offsets
            })
            .collect()
    };

    // Phase 3: destination slot of every pair (blocks in parallel, flattened
    // back in input order), inverted into "which input fills slot d" — a
    // plain u32 scatter, so the pairs themselves move exactly once, in the
    // in-order gather below.
    let dest: Vec<u32> = ranges
        .par_iter()
        .enumerate()
        .map(|(blk, &(s, e))| {
            let mut cursor = slot_offset[blk].clone();
            let mut local = Vec::with_capacity(e - s);
            for &h in &hashes[s..e] {
                let b = (h & mask) as usize;
                local.push(cursor[b] as u32);
                cursor[b] += 1;
            }
            local
        })
        .collect::<Vec<Vec<u32>>>()
        .concat();
    let mut src_of = vec![0u32; n];
    for (i, &d) in dest.iter().enumerate() {
        src_of[d as usize] = i as u32;
    }
    let bucketed_hashes: Vec<u64> = src_of.par_iter().map(|&s| hashes[s as usize]).collect();

    // Phase 4: group within each bucket in parallel (buckets are disjoint):
    // sort the bucket's slots by hash, then emit hash runs as groups. The
    // sorted slot order of the whole output is collected first so the pairs
    // can be gathered in one parallel pass.
    let per_bucket: Vec<(Vec<u32>, Vec<usize>)> = (0..nbuckets)
        .into_par_iter()
        .map(|b| {
            let (lo, hi) = (bucket_starts[b], bucket_starts[b + 1]);
            if lo == hi {
                return (Vec::new(), Vec::new());
            }
            let mut order: Vec<u32> = (lo as u32..hi as u32).collect();
            order.sort_unstable_by_key(|&slot| bucketed_hashes[slot as usize]);
            let mut starts = Vec::new();
            let mut i = 0usize;
            while i < order.len() {
                let h = bucketed_hashes[order[i] as usize];
                let mut j = i + 1;
                while j < order.len() && bucketed_hashes[order[j] as usize] == h {
                    j += 1;
                }
                if j - i == 1 {
                    starts.push(i);
                } else {
                    // Hash collision between distinct keys: sub-group the run
                    // by key equality (runs are tiny, quadratic is fine).
                    let run = &mut order[i..j];
                    let mut grouped = 0usize;
                    while grouped < run.len() {
                        starts.push(i + grouped);
                        let key = &pairs[src_of[run[grouped] as usize] as usize].0;
                        let mut next = grouped + 1;
                        for scan in grouped + 1..run.len() {
                            if &pairs[src_of[run[scan] as usize] as usize].0 == key {
                                run.swap(next, scan);
                                next += 1;
                            }
                        }
                        grouped = next;
                    }
                }
                i = j;
            }
            (order, starts)
        })
        .collect();

    // Phase 5: concatenate bucket orders, gather the pairs once, and shift
    // the group boundaries to global positions.
    let mut group_starts = Vec::new();
    let mut final_order = Vec::with_capacity(n);
    for (order, starts) in &per_bucket {
        let base = final_order.len();
        group_starts.extend(starts.iter().map(|s| base + s));
        final_order.extend_from_slice(order);
    }
    let out: Vec<(K, V)> = final_order
        .par_iter()
        .map(|&slot| pairs[src_of[slot as usize] as usize].clone())
        .collect();
    GroupedByKey {
        pairs: out,
        group_starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::collections::HashMap;

    fn check_grouping(pairs: Vec<(u64, u32)>) {
        let mut reference: HashMap<u64, Vec<u32>> = HashMap::new();
        for &(k, v) in &pairs {
            reference.entry(k).or_default().push(v);
        }
        let grouped = semisort_by_key(pairs);
        assert_eq!(grouped.num_groups(), reference.len());
        let mut seen_keys = Vec::new();
        for g in grouped.groups() {
            assert!(!g.is_empty());
            let key = g[0].0;
            assert!(g.iter().all(|&(k, _)| k == key), "group mixes keys");
            seen_keys.push(key);
            let mut vals: Vec<u32> = g.iter().map(|&(_, v)| v).collect();
            vals.sort_unstable();
            let mut expect = reference[&key].clone();
            expect.sort_unstable();
            assert_eq!(vals, expect, "values of key {key} differ");
        }
        seen_keys.sort_unstable();
        seen_keys.dedup();
        assert_eq!(
            seen_keys.len(),
            reference.len(),
            "a key appears in two groups"
        );
    }

    #[test]
    fn groups_random_pairs() {
        let mut rng = StdRng::seed_from_u64(42);
        let pairs: Vec<(u64, u32)> = (0..40_000u32)
            .map(|i| (rng.gen_range(0..500u64), i))
            .collect();
        check_grouping(pairs);
    }

    #[test]
    fn groups_all_distinct_keys() {
        let pairs: Vec<(u64, u32)> = (0..5_000u32).map(|i| (i as u64 * 1_000_003, i)).collect();
        check_grouping(pairs);
    }

    #[test]
    fn groups_single_key() {
        let pairs: Vec<(u64, u32)> = (0..5_000u32).map(|i| (7, i)).collect();
        check_grouping(pairs);
    }

    #[test]
    fn empty_input_gives_no_groups() {
        let grouped = semisort_by_key::<u64, u32>(Vec::new());
        assert_eq!(grouped.num_groups(), 0);
        assert!(grouped.pairs.is_empty());
    }

    #[test]
    fn group_accessor_matches_boundaries() {
        let pairs: Vec<(u64, u32)> = vec![(1, 10), (2, 20), (1, 11), (3, 30), (2, 21)];
        let grouped = semisort_by_key(pairs);
        let total: usize = grouped.groups().map(|g| g.len()).sum();
        assert_eq!(total, 5);
    }
}
