//! Parallel semisort: group key-value pairs by key, with no guarantee on the
//! order of the groups. O(n) expected work, O(log n) depth w.h.p.
//!
//! This is the primitive the paper uses to build the grid in §4.1: the keys
//! are cell ids and the values are point ids; a comparison sort would cost
//! O(n log n) and break work-efficiency, so the pairs are only *grouped*.
//!
//! Following the structure of Gu–Shun–Sun–Blelloch semisort, we hash the
//! keys, scatter pairs into buckets by hash prefix in parallel (a counting
//! pass + a write pass), and then group within each bucket. The number of
//! buckets is Θ(#threads²), so each bucket is processed serially without
//! hurting the depth bound in practice.

use crate::util::{block_ranges, num_threads};
use rayon::prelude::*;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, Hash, Hasher};

/// Result of a semisort: the reordered pairs plus the boundaries of each
/// group. Group `i` occupies `pairs[group_starts[i]..group_starts[i+1]]`
/// (with an implicit final boundary at `pairs.len()`), and every pair in a
/// group has the same key.
#[derive(Debug, Clone)]
pub struct GroupedByKey<K, V> {
    /// The key-value pairs, grouped so that equal keys are contiguous.
    pub pairs: Vec<(K, V)>,
    /// Start index of each group in `pairs`, in increasing order.
    pub group_starts: Vec<usize>,
}

impl<K, V> GroupedByKey<K, V> {
    /// Number of distinct keys (groups).
    pub fn num_groups(&self) -> usize {
        self.group_starts.len()
    }

    /// Iterates over groups as `(key, values-slice)` where the slice contains
    /// the whole `(key, value)` pairs of that group.
    pub fn groups(&self) -> impl Iterator<Item = &[(K, V)]> {
        (0..self.group_starts.len()).map(move |i| self.group(i))
    }

    /// Returns group `i` as a slice of `(key, value)` pairs.
    pub fn group(&self, i: usize) -> &[(K, V)] {
        let start = self.group_starts[i];
        let end = self
            .group_starts
            .get(i + 1)
            .copied()
            .unwrap_or(self.pairs.len());
        &self.pairs[start..end]
    }
}

#[derive(Default)]
struct FxLikeHasher(u64);

impl Hasher for FxLikeHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // A simple multiply-xor mix; only used to spread keys across buckets.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 ^= self.0 >> 29;
    }
}

fn hash_key<K: Hash>(key: &K) -> u64 {
    // Final avalanche so that taking the low bits for bucketing is safe.
    let mut x = BuildHasherDefault::<FxLikeHasher>::default().hash_one(key);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// Groups `pairs` by key. Pairs with equal keys become contiguous in the
/// output; the relative order of groups (and of pairs within a group) is
/// unspecified, exactly as in the paper's semisort primitive.
pub fn semisort_by_key<K, V>(pairs: Vec<(K, V)>) -> GroupedByKey<K, V>
where
    K: Hash + Eq + Clone + Send + Sync,
    V: Send + Sync + Clone,
{
    let n = pairs.len();
    if n == 0 {
        return GroupedByKey {
            pairs,
            group_starts: Vec::new(),
        };
    }

    let nbuckets = (num_threads() * num_threads() * 4)
        .clamp(16, 4096)
        .next_power_of_two();
    let mask = (nbuckets - 1) as u64;
    let ranges = block_ranges(n, 2048);

    // Phase 1: count pairs per (block, bucket).
    let counts: Vec<Vec<usize>> = ranges
        .par_iter()
        .map(|&(s, e)| {
            let mut c = vec![0usize; nbuckets];
            for (k, _) in &pairs[s..e] {
                c[(hash_key(k) & mask) as usize] += 1;
            }
            c
        })
        .collect();
    // Bucket sizes and bucket start offsets.
    let mut bucket_sizes = vec![0usize; nbuckets];
    for c in &counts {
        for (b, &v) in c.iter().enumerate() {
            bucket_sizes[b] += v;
        }
    }
    let mut bucket_starts = vec![0usize; nbuckets + 1];
    for b in 0..nbuckets {
        bucket_starts[b + 1] = bucket_starts[b] + bucket_sizes[b];
    }

    // Phase 2: scatter pairs into their buckets. Each (block, bucket) slot has
    // a unique offset, so we gather writes per block and apply them.
    let mut slot_offset = vec![vec![0usize; nbuckets]; counts.len()];
    {
        let mut cursor = bucket_starts[..nbuckets].to_vec();
        for (blk, c) in counts.iter().enumerate() {
            for ((slot, cur), &count) in slot_offset[blk].iter_mut().zip(cursor.iter_mut()).zip(c) {
                *slot = *cur;
                *cur += count;
            }
        }
    }
    let mut scattered: Vec<Option<(K, V)>> = vec![None; n];
    let writes: Vec<Vec<(usize, (K, V))>> = ranges
        .par_iter()
        .enumerate()
        .map(|(blk, &(s, e))| {
            let mut cursor = slot_offset[blk].clone();
            let mut local = Vec::with_capacity(e - s);
            for (k, v) in &pairs[s..e] {
                let b = (hash_key(k) & mask) as usize;
                local.push((cursor[b], (k.clone(), v.clone())));
                cursor[b] += 1;
            }
            local
        })
        .collect();
    for block_writes in writes {
        for (pos, kv) in block_writes {
            scattered[pos] = Some(kv);
        }
    }
    let scattered: Vec<(K, V)> = scattered
        .into_iter()
        .map(|o| o.expect("semisort scatter slot filled"))
        .collect();

    // Phase 3: group within each bucket in parallel (buckets are disjoint).
    let per_bucket: Vec<Vec<(K, V)>> = (0..nbuckets)
        .into_par_iter()
        .map(|b| {
            let slice = &scattered[bucket_starts[b]..bucket_starts[b + 1]];
            if slice.is_empty() {
                return Vec::new();
            }
            let mut groups: HashMap<K, Vec<(K, V)>> = HashMap::with_capacity(slice.len());
            for (k, v) in slice {
                groups
                    .entry(k.clone())
                    .or_default()
                    .push((k.clone(), v.clone()));
            }
            let mut flat = Vec::with_capacity(slice.len());
            for (_, g) in groups {
                flat.extend(g);
            }
            flat
        })
        .collect();

    // Phase 4: concatenate buckets and record group boundaries.
    let mut out = Vec::with_capacity(n);
    let mut group_starts = Vec::new();
    for bucket in per_bucket {
        let mut i = 0usize;
        let base = out.len();
        while i < bucket.len() {
            group_starts.push(base + i);
            let key = &bucket[i].0;
            let mut j = i + 1;
            while j < bucket.len() && &bucket[j].0 == key {
                j += 1;
            }
            i = j;
        }
        out.extend(bucket);
    }
    GroupedByKey {
        pairs: out,
        group_starts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::collections::HashMap;

    fn check_grouping(pairs: Vec<(u64, u32)>) {
        let mut reference: HashMap<u64, Vec<u32>> = HashMap::new();
        for &(k, v) in &pairs {
            reference.entry(k).or_default().push(v);
        }
        let grouped = semisort_by_key(pairs);
        assert_eq!(grouped.num_groups(), reference.len());
        let mut seen_keys = Vec::new();
        for g in grouped.groups() {
            assert!(!g.is_empty());
            let key = g[0].0;
            assert!(g.iter().all(|&(k, _)| k == key), "group mixes keys");
            seen_keys.push(key);
            let mut vals: Vec<u32> = g.iter().map(|&(_, v)| v).collect();
            vals.sort_unstable();
            let mut expect = reference[&key].clone();
            expect.sort_unstable();
            assert_eq!(vals, expect, "values of key {key} differ");
        }
        seen_keys.sort_unstable();
        seen_keys.dedup();
        assert_eq!(
            seen_keys.len(),
            reference.len(),
            "a key appears in two groups"
        );
    }

    #[test]
    fn groups_random_pairs() {
        let mut rng = StdRng::seed_from_u64(42);
        let pairs: Vec<(u64, u32)> = (0..40_000u32)
            .map(|i| (rng.gen_range(0..500u64), i))
            .collect();
        check_grouping(pairs);
    }

    #[test]
    fn groups_all_distinct_keys() {
        let pairs: Vec<(u64, u32)> = (0..5_000u32).map(|i| (i as u64 * 1_000_003, i)).collect();
        check_grouping(pairs);
    }

    #[test]
    fn groups_single_key() {
        let pairs: Vec<(u64, u32)> = (0..5_000u32).map(|i| (7, i)).collect();
        check_grouping(pairs);
    }

    #[test]
    fn empty_input_gives_no_groups() {
        let grouped = semisort_by_key::<u64, u32>(Vec::new());
        assert_eq!(grouped.num_groups(), 0);
        assert!(grouped.pairs.is_empty());
    }

    #[test]
    fn group_accessor_matches_boundaries() {
        let pairs: Vec<(u64, u32)> = vec![(1, 10), (2, 20), (1, 11), (3, 30), (2, 21)];
        let grouped = semisort_by_key(pairs);
        let total: usize = grouped.groups().map(|g| g.len()).sum();
        assert_eq!(total, 5);
    }
}
