//! Parallel primitives used throughout the parallel DBSCAN implementation.
//!
//! This crate re-implements the primitives the paper takes from the Problem
//! Based Benchmark Suite (PBBS) — see Table 1 of the paper — on top of
//! [`rayon`]'s work-stealing fork-join pool (our stand-in for Cilk Plus):
//!
//! | Primitive | Work | Depth | Module |
//! |-----------|------|-------|--------|
//! | Prefix sum | O(n) | O(log n) | [`prefix`] |
//! | Filter / pack | O(n) | O(log n) | [`mod@filter`] |
//! | Comparison sort | O(n log n) | O(log n) | [`sort`] |
//! | Integer sort (poly-log key range) | O(n) | O(log n) | [`sort`] |
//! | Semisort | O(n) expected | O(log n) w.h.p. | [`semisort`] |
//! | Merge | O(n) | O(log n) | [`merge`] |
//! | Concurrent hash table (n ops) | O(n) w.h.p. | O(log n) w.h.p. | [`hashtable`] |
//! | Pointer jumping (list ranking) | O(n log n) | O(log n) | [`pointer_jump`] |
//!
//! The bounds above are the asymptotic costs of the *algorithms* being
//! mimicked; the implementations here follow the same structure (blocked
//! two-pass scans, sample-based semisort, phase-concurrent linear probing)
//! so that their scaling behaviour matches the paper's cost model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod filter;
pub mod hashtable;
pub mod merge;
pub mod pointer_jump;
pub mod prefix;
pub mod semisort;
pub mod sort;
mod util;

pub use csr::Csr;
pub use filter::{count_if, filter, filter_indexed, partition_indices};
pub use hashtable::ConcurrentMap;
pub use merge::{merge_by, merge_sorted};
pub use pointer_jump::{pointer_jump_roots, strip_heads_to_assignment};
pub use prefix::{prefix_sum, prefix_sum_inplace, prefix_sum_with_total};
pub use semisort::{semisort_by_key, GroupedByKey};
pub use sort::{integer_sort_by_key, par_sort_by, par_sort_by_key, par_sort_unstable};
pub use util::{grain_size, num_threads, par_blocks};
