//! Parallel merge of two sorted sequences. O(n) work, O(log n) depth.
//!
//! The paper uses parallel merge in the box construction (§4.2) to link
//! neighbouring cells across adjacent strips, and re-uses the same
//! pivot-and-binary-search decomposition idea for the USEC containment query
//! (§4.4). The decomposition below matches the paper's description: take
//! equally spaced pivots from `a`, binary-search them in `b`, recurse once in
//! the other direction, then solve each small sub-problem serially.

use rayon::prelude::*;
use std::cmp::Ordering;

/// Merges two sorted slices into one sorted vector using the natural order.
pub fn merge_sorted<T: Ord + Clone + Send + Sync>(a: &[T], b: &[T]) -> Vec<T> {
    merge_by(a, b, |x, y| x.cmp(y))
}

/// Merges two slices sorted according to `cmp` into one sorted vector.
/// The merge is stable: on ties, elements of `a` come first.
pub fn merge_by<T, F>(a: &[T], b: &[T], cmp: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = a.len() + b.len();
    if n == 0 {
        return Vec::new();
    }
    // Decompose into subproblems of about `grain` total elements.
    let grain = crate::util::grain_size(n, 4096);
    let nsub = n.div_ceil(grain);
    // For subproblem k we need the split positions (ai, bi) such that the
    // first k*grain output elements come from a[..ai] and b[..bi].
    let splits: Vec<(usize, usize)> = (0..=nsub)
        .into_par_iter()
        .map(|k| {
            let target = (k * grain).min(n);
            split_for_rank(a, b, target, &cmp)
        })
        .collect();
    let pieces: Vec<Vec<T>> = splits
        .par_windows(2)
        .map(|w| {
            let (a0, b0) = w[0];
            let (a1, b1) = w[1];
            serial_merge(&a[a0..a1], &b[b0..b1], &cmp)
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    for p in pieces {
        out.extend(p);
    }
    out
}

/// Finds `(i, j)` with `i + j == rank` such that every element of `a[..i]`
/// and `b[..j]` precedes (w.r.t. the merged order) every element of
/// `a[i..]` and `b[j..]`. Standard double binary search.
fn split_for_rank<T, F>(a: &[T], b: &[T], rank: usize, cmp: &F) -> (usize, usize)
where
    F: Fn(&T, &T) -> Ordering,
{
    let mut lo = rank.saturating_sub(b.len());
    let mut hi = rank.min(a.len());
    while lo < hi {
        let i = (lo + hi) / 2;
        let j = rank - i;
        // Invariant candidates: a[i] vs b[j-1]; a-elements win ties (stable).
        if j > 0 && i < a.len() && cmp(&a[i], &b[j - 1]) == Ordering::Less {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    let i = lo;
    (i, rank - i)
}

fn serial_merge<T, F>(a: &[T], b: &[T], cmp: &F) -> Vec<T>
where
    T: Clone,
    F: Fn(&T, &T) -> Ordering,
{
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if cmp(&a[i], &b[j]) != Ordering::Greater {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn merges_random_sorted_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut a: Vec<u32> = (0..rng.gen_range(0..5000))
                .map(|_| rng.gen_range(0..10_000))
                .collect();
            let mut b: Vec<u32> = (0..rng.gen_range(0..5000))
                .map(|_| rng.gen_range(0..10_000))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            let got = merge_sorted(&a, &b);
            let mut want = [a.clone(), b.clone()].concat();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn merge_with_empty_sides() {
        let a: Vec<u32> = (0..100).collect();
        assert_eq!(merge_sorted(&a, &[]), a);
        assert_eq!(merge_sorted(&[], &a), a);
        assert!(merge_sorted::<u32>(&[], &[]).is_empty());
    }

    #[test]
    fn merge_is_stable_on_ties() {
        // Pair (key, source): all keys equal; a-elements must precede b's.
        let a: Vec<(u32, u8)> = (0..1000).map(|_| (5, 0)).collect();
        let b: Vec<(u32, u8)> = (0..1000).map(|_| (5, 1)).collect();
        let got = merge_by(&a, &b, |x, y| x.0.cmp(&y.0));
        assert!(got[..1000].iter().all(|&(_, s)| s == 0));
        assert!(got[1000..].iter().all(|&(_, s)| s == 1));
    }

    #[test]
    fn merges_large_inputs() {
        let a: Vec<u64> = (0..100_000).map(|i| i * 2).collect();
        let b: Vec<u64> = (0..100_000).map(|i| i * 2 + 1).collect();
        let got = merge_sorted(&a, &b);
        let want: Vec<u64> = (0..200_000).collect();
        assert_eq!(got, want);
    }
}
