//! Pointer jumping on a linked list of "parent" pointers.
//!
//! The box construction (§4.2 of the paper) assigns each point a pointer to
//! the first point whose x-coordinate exceeds its own by more than ε/√2, and
//! then uses pointer jumping so that every point learns the head of its
//! strip: heads start with value 1, everyone else 0, and after O(log n)
//! rounds of "pass your value to your parent's parent" each point knows the
//! nearest head to its left.
//!
//! We implement the equivalent formulation directly on the parent array:
//! repeatedly replace `parent[i]` with `parent[parent[i]]` until a fixpoint,
//! which takes O(log n) rounds, each O(n) work and O(1) depth.

use rayon::prelude::*;

/// Sentinel parent meaning "this node is a root / strip head".
pub const ROOT: usize = usize::MAX;

/// Given a parent array where `parent[i]` is either [`ROOT`] or the index of
/// another node, returns for every node the root it eventually reaches.
/// Requires the parent graph to be acyclic (a forest), which the strip
/// construction guarantees because parents always have strictly larger
/// x-rank.
pub fn pointer_jump_roots(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    let mut current: Vec<usize> = (0..n)
        .map(|i| if parent[i] == ROOT { i } else { parent[i] })
        .collect();
    loop {
        let next: Vec<usize> = current.par_iter().map(|&p| current[p]).collect();
        if next == current {
            return current;
        }
        current = next;
    }
}

/// Strip assignment used by the box construction: given, for every point in
/// x-sorted order, whether it is the head of a strip (`is_head[i]`), returns
/// for every point the index of its strip head (the closest head at or before
/// it). `is_head[0]` must be true.
///
/// This is the "values 1/0 + pointer jumping" routine of Figure 2(b): we link
/// every non-head point to the previous point and jump until every point
/// points at a head.
pub fn strip_heads_to_assignment(is_head: &[bool]) -> Vec<usize> {
    let n = is_head.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(is_head[0], "the leftmost point must start a strip");
    let parent: Vec<usize> = (0..n)
        .into_par_iter()
        .map(|i| if is_head[i] { ROOT } else { i - 1 })
        .collect();
    // After jumping, every node's root is a head… unless a run of non-heads
    // compresses onto a non-head-yet node mid-round; a final correction pass
    // is unnecessary because roots in this forest are exactly the ROOT nodes,
    // i.e. the heads.
    let roots = pointer_jump_roots(&parent);
    debug_assert!(roots.iter().all(|&r| is_head[r]));
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn reference_assignment(is_head: &[bool]) -> Vec<usize> {
        let mut out = Vec::with_capacity(is_head.len());
        let mut current = 0usize;
        for (i, &h) in is_head.iter().enumerate() {
            if h {
                current = i;
            }
            out.push(current);
        }
        out
    }

    #[test]
    fn single_strip() {
        let mut is_head = vec![false; 1000];
        is_head[0] = true;
        let got = strip_heads_to_assignment(&is_head);
        assert!(got.iter().all(|&r| r == 0));
    }

    #[test]
    fn every_point_its_own_strip() {
        let is_head = vec![true; 500];
        let got = strip_heads_to_assignment(&is_head);
        assert_eq!(got, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn random_heads_match_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let n = rng.gen_range(1..5000);
            let mut is_head: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.05)).collect();
            is_head[0] = true;
            assert_eq!(
                strip_heads_to_assignment(&is_head),
                reference_assignment(&is_head)
            );
        }
    }

    #[test]
    fn pointer_jump_on_explicit_forest() {
        // Chain 4 -> 3 -> 2 -> 1 -> 0 (root), plus isolated root 5.
        let parent = vec![ROOT, 0, 1, 2, 3, ROOT];
        let roots = pointer_jump_roots(&parent);
        assert_eq!(roots, vec![0, 0, 0, 0, 0, 5]);
    }

    #[test]
    fn empty_input() {
        assert!(strip_heads_to_assignment(&[]).is_empty());
        assert!(pointer_jump_roots(&[]).is_empty());
    }
}
