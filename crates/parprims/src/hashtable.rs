//! Phase-concurrent linear-probing hash table.
//!
//! The paper stores the non-empty grid cells in the non-deterministic
//! concurrent linear-probing hash table of Shun–Blelloch: insertions use an
//! atomic update to claim an empty slot along the probe sequence and keep
//! probing on failure; queries are wait-free reads. n operations take O(n)
//! work and O(log n) depth with high probability.
//!
//! The table is *phase-concurrent*: concurrent inserts are safe with other
//! inserts, and concurrent lookups are safe with other lookups, but the two
//! phases must not interleave (exactly the usage pattern of the DBSCAN
//! algorithms: build the cell table, then query it read-only).
//!
//! The implementation stays in safe Rust by storing the slot *claim* in an
//! `AtomicUsize` (index+1 into a write-once values vector shared via
//! `OnceLock` slots), which preserves the claim-then-publish structure of the
//! original without unsafe code.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

const EMPTY: usize = usize::MAX;

/// A phase-concurrent hash map from `K` to `V` with a fixed capacity chosen
/// at construction. Keys must be unique across inserts (the cell ids in the
/// grid construction are); inserting a duplicate key returns `false`.
pub struct ConcurrentMap<K, V> {
    slots: Vec<AtomicUsize>,
    entries: Vec<OnceLock<(K, V)>>,
    claimed: AtomicUsize,
    mask: usize,
}

impl<K, V> ConcurrentMap<K, V>
where
    K: std::hash::Hash + Eq + Clone,
    V: Clone,
{
    /// Creates a table able to hold `capacity` entries. The underlying slot
    /// array is sized to twice the next power of two of `capacity`, so the
    /// load factor stays at or below 1/2 (expected O(1) probes).
    pub fn with_capacity(capacity: usize) -> Self {
        let slots_len = (capacity.max(1) * 2).next_power_of_two();
        ConcurrentMap {
            slots: (0..slots_len).map(|_| AtomicUsize::new(EMPTY)).collect(),
            entries: (0..capacity.max(1)).map(|_| OnceLock::new()).collect(),
            claimed: AtomicUsize::new(0),
            mask: slots_len - 1,
        }
    }

    fn hash(&self, key: &K) -> usize {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        let mut x = h.finish();
        x ^= x >> 31;
        x = x.wrapping_mul(0x7FB5_D329_728E_A185);
        x ^= x >> 27;
        (x as usize) & self.mask
    }

    /// Inserts `(key, value)`. Returns `true` if the key was newly inserted,
    /// `false` if an equal key was already present (the existing value is
    /// kept). May be called concurrently with other `insert`s. Panics if the
    /// table is full.
    pub fn insert(&self, key: K, value: V) -> bool {
        // Reserve an entry slot and publish the payload first, so other
        // threads that observe our claim can always read the entry.
        let my_entry = self.claimed.fetch_add(1, Ordering::Relaxed);
        assert!(
            my_entry < self.entries.len(),
            "ConcurrentMap overflow: capacity {} exceeded",
            self.entries.len()
        );
        self.entries[my_entry]
            .set((key.clone(), value))
            .unwrap_or_else(|_| panic!("entry slot double-published"));

        let mut idx = self.hash(&key);
        loop {
            let current = self.slots[idx].load(Ordering::Acquire);
            if current == EMPTY {
                match self.slots[idx].compare_exchange(
                    EMPTY,
                    my_entry,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return true,
                    Err(_) => continue, // someone claimed this slot; re-inspect it
                }
            } else {
                let (existing_key, _) = self.entries[current]
                    .get()
                    .expect("claimed slot has published entry");
                if existing_key == &key {
                    return false;
                }
                idx = (idx + 1) & self.mask;
            }
        }
    }

    /// Looks up `key`. May be called concurrently with other `get`s (but not
    /// with `insert`s — phase-concurrency).
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut idx = self.hash(key);
        loop {
            let current = self.slots[idx].load(Ordering::Acquire);
            if current == EMPTY {
                return None;
            }
            let (k, v) = self.entries[current]
                .get()
                .expect("claimed slot has published entry");
            if k == key {
                return Some(v);
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Returns `true` if the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries that have been inserted (including duplicate-key
    /// attempts, which still consume an entry slot but are not reachable).
    /// For the DBSCAN use case keys are unique, so this equals the map size.
    pub fn len(&self) -> usize {
        self.claimed.load(Ordering::Relaxed).min(self.entries.len())
    }

    /// Returns `true` if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn insert_then_get_single_thread() {
        let map = ConcurrentMap::with_capacity(100);
        for i in 0..100u64 {
            assert!(map.insert(i, i * 10));
        }
        for i in 0..100u64 {
            assert_eq!(map.get(&i), Some(&(i * 10)));
        }
        assert_eq!(map.get(&1000), None);
    }

    #[test]
    fn concurrent_inserts_all_found() {
        let n = 50_000u64;
        let map = ConcurrentMap::with_capacity(n as usize);
        (0..n).into_par_iter().for_each(|i| {
            map.insert(i, i + 1);
        });
        (0..n).into_par_iter().for_each(|i| {
            assert_eq!(map.get(&i), Some(&(i + 1)));
        });
        assert_eq!(map.len(), n as usize);
    }

    #[test]
    fn duplicate_key_insert_returns_false() {
        let map = ConcurrentMap::with_capacity(10);
        assert!(map.insert(7u32, "first"));
        assert!(!map.insert(7u32, "second"));
        assert_eq!(map.get(&7), Some(&"first"));
    }

    #[test]
    fn missing_keys_return_none() {
        let map: ConcurrentMap<u64, u64> = ConcurrentMap::with_capacity(16);
        for i in 0..16u64 {
            map.insert(i * 3, i);
        }
        for i in 0..16u64 {
            assert_eq!(map.get(&(i * 3 + 1)), None);
        }
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflowing_capacity_panics() {
        let map = ConcurrentMap::with_capacity(4);
        for i in 0..10u32 {
            map.insert(i, i);
        }
    }
}
