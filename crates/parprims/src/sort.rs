//! Parallel comparison sort and parallel integer sort.
//!
//! The comparison sort wraps rayon's parallel merge/quick sort, which is the
//! practical analog of the cache-efficient samplesort the paper takes from
//! PBBS (O(n log n) work, polylogarithmic depth). The integer sort implements
//! the counting-sort structure from the paper: partition the input into
//! blocks, build a histogram per block, prefix-sum the per-(block, key)
//! counts to obtain unique write offsets, then scatter — O(n) work and
//! O(log n) depth for a polylogarithmic key range.

use crate::prefix::prefix_sum_inplace;
use crate::util::block_ranges;
use rayon::prelude::*;
use std::cmp::Ordering;

/// Sorts `data` in parallel using the natural order (unstable).
pub fn par_sort_unstable<T: Ord + Send>(data: &mut [T]) {
    data.par_sort_unstable();
}

/// Sorts `data` in parallel by a comparison function (stable, like PBBS
/// samplesort which the paper relies on for the box construction).
pub fn par_sort_by<T, F>(data: &mut [T], cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    data.par_sort_by(cmp);
}

/// Sorts `data` in parallel by a key extraction function (stable).
pub fn par_sort_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Send,
    K: Ord + Send,
    F: Fn(&T) -> K + Sync,
{
    data.par_sort_by_key(key);
}

/// Stable parallel counting sort of `data` by `key(x) ∈ 0..num_keys`.
///
/// Intended for small key ranges (the paper uses it with `num_keys = 2^d`
/// inside quadtree construction). Work O(n + num_keys · #blocks), depth
/// O(log n). Panics if a key is out of range.
pub fn integer_sort_by_key<T, F>(data: &[T], num_keys: usize, key: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> usize + Sync,
{
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    assert!(num_keys > 0, "integer sort requires at least one key");
    let ranges = block_ranges(n, 2048);
    let nblocks = ranges.len();

    // Phase 1: histogram per block.
    let histograms: Vec<Vec<usize>> = ranges
        .par_iter()
        .map(|&(s, e)| {
            let mut hist = vec![0usize; num_keys];
            for v in &data[s..e] {
                let k = key(v);
                assert!(k < num_keys, "integer sort key {k} out of range {num_keys}");
                hist[k] += 1;
            }
            hist
        })
        .collect();

    // Phase 2: global offsets in (key, block) order so the sort is stable.
    let mut offsets = vec![0usize; num_keys * nblocks];
    for k in 0..num_keys {
        for (b, hist) in histograms.iter().enumerate() {
            offsets[k * nblocks + b] = hist[k];
        }
    }
    let total = prefix_sum_inplace(&mut offsets);
    debug_assert_eq!(total, n);

    // Phase 3: scatter. Each block owns a disjoint set of output positions,
    // so the writes never conflict; we materialize via per-block local copies
    // into an Option buffer to stay within safe code.
    let mut out: Vec<Option<T>> = vec![None; n];
    // Collect (position, value) pairs per block then write serially per block
    // into disjoint regions. We use a two-step split of the output vector by
    // gathering all writes first (still O(n) work).
    let writes: Vec<Vec<(usize, T)>> = ranges
        .par_iter()
        .enumerate()
        .map(|(b, &(s, e))| {
            let mut cursor: Vec<usize> = (0..num_keys).map(|k| offsets[k * nblocks + b]).collect();
            let mut local = Vec::with_capacity(e - s);
            for v in &data[s..e] {
                let k = key(v);
                local.push((cursor[k], v.clone()));
                cursor[k] += 1;
            }
            local
        })
        .collect();
    for block_writes in writes {
        for (pos, v) in block_writes {
            debug_assert!(out[pos].is_none());
            out[pos] = Some(v);
        }
    }
    out.into_iter()
        .map(|o| o.expect("scatter slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn par_sort_matches_std_sort() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut data: Vec<u64> = (0..50_000).map(|_| rng.gen_range(0..1_000_000)).collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        par_sort_unstable(&mut data);
        assert_eq!(data, expect);
    }

    #[test]
    fn par_sort_by_key_orders_by_key() {
        let mut data: Vec<(u32, u32)> = (0..10_000u32).map(|i| (i % 97, i)).collect();
        par_sort_by_key(&mut data, |&(k, _)| k);
        assert!(data.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn integer_sort_is_stable_and_correct() {
        let mut rng = StdRng::seed_from_u64(13);
        let data: Vec<(usize, u64)> = (0..30_000)
            .map(|i| (rng.gen_range(0..16), i as u64))
            .collect();
        let got = integer_sort_by_key(&data, 16, |&(k, _)| k);
        // Correct multiset and sorted by key.
        assert_eq!(got.len(), data.len());
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        // Stability: within a key, original order (the second component is the
        // original index) must be preserved.
        for k in 0..16 {
            let ours: Vec<u64> = got
                .iter()
                .filter(|&&(kk, _)| kk == k)
                .map(|&(_, v)| v)
                .collect();
            let reference: Vec<u64> = data
                .iter()
                .filter(|&&(kk, _)| kk == k)
                .map(|&(_, v)| v)
                .collect();
            assert_eq!(ours, reference, "key {k} not stable");
        }
    }

    #[test]
    fn integer_sort_handles_empty_and_single() {
        let empty: Vec<(usize, u8)> = Vec::new();
        assert!(integer_sort_by_key(&empty, 4, |&(k, _)| k).is_empty());
        let single = vec![(3usize, 9u8)];
        assert_eq!(integer_sort_by_key(&single, 4, |&(k, _)| k), single);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn integer_sort_rejects_out_of_range_keys() {
        let data = vec![0usize, 1, 2, 5];
        let _ = integer_sort_by_key(&data, 4, |&k| k);
    }
}
