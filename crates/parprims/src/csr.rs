//! A generic compressed-sparse-row container.
//!
//! Three structures in this workspace store "one variable-length list per
//! row, flattened into two arrays": the per-cell ε-neighbour lists of a
//! spatial index (`spatial::NeighborGraph`), the per-point cluster-id sets
//! of a clustering (`pardbscan::ClusterSets`), and — during construction —
//! several transient builders. They all need the same invariants (a leading
//! zero, monotone offsets covering the value array exactly) and the same
//! accessors (row slice, row length, counts). [`Csr`] is that shape written
//! once; the domain types wrap it and keep their own vocabulary.

/// Flat row-major storage of variable-length rows: row `i` is
/// `values[offsets[i]..offsets[i + 1]]`. Two allocations regardless of the
/// row count, contiguous row slices, no per-row heap objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr<T> {
    /// Per-row start offsets into `values`; `offsets.len()` is the number of
    /// rows plus one, and `offsets[rows]` is `values.len()`.
    offsets: Vec<usize>,
    /// All rows, concatenated in row order.
    values: Vec<T>,
}

impl<T> Csr<T> {
    /// A container with no rows.
    pub fn empty() -> Self {
        Csr {
            offsets: vec![0],
            values: Vec::new(),
        }
    }

    /// Flattens per-row lists into CSR form.
    pub fn from_lists(lists: &[Vec<T>]) -> Self
    where
        T: Clone,
    {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for list in lists {
            total += list.len();
            offsets.push(total);
        }
        let mut values = Vec::with_capacity(total);
        for list in lists {
            values.extend_from_slice(list);
        }
        Csr { offsets, values }
    }

    /// Assembles a container from raw CSR parts. Panics if the offsets are
    /// not monotone or do not cover `values` exactly (a malformed container
    /// would otherwise surface as out-of-bounds slicing deep in a query).
    pub fn from_parts(offsets: Vec<usize>, values: Vec<T>) -> Self {
        assert!(!offsets.is_empty(), "offsets needs a leading 0");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotone"
        );
        assert_eq!(
            *offsets.last().unwrap(),
            values.len(),
            "offsets must cover values exactly"
        );
        Csr { offsets, values }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the container has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Total number of stored values across all rows.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Row `i`, as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.values[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Length of row `i`.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Number of rows of length zero.
    pub fn num_empty_rows(&self) -> usize {
        self.offsets.windows(2).filter(|w| w[0] == w[1]).count()
    }

    /// The rows re-materialized as per-row lists (test/debug helper — hot
    /// paths use [`Csr::row`]).
    pub fn to_lists(&self) -> Vec<Vec<T>>
    where
        T: Clone,
    {
        (0..self.num_rows()).map(|i| self.row(i).to_vec()).collect()
    }

    /// Decomposes the container into its raw `(offsets, values)` arrays.
    pub fn into_parts(self) -> (Vec<usize>, Vec<T>) {
        (self.offsets, self.values)
    }
}

/// `csr[i]` is row `i` — keeps call sites of former `Vec<Vec<T>>`
/// representations readable.
impl<T> std::ops::Index<usize> for Csr<T> {
    type Output = [T];

    #[inline]
    fn index(&self, i: usize) -> &[T] {
        self.row(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lists_round_trips() {
        let lists = vec![vec![1usize, 2], vec![0], vec![], vec![0, 1, 2]];
        let csr = Csr::from_lists(&lists);
        assert_eq!(csr.num_rows(), 4);
        assert_eq!(csr.num_values(), 6);
        assert_eq!(csr.row(0), &[1, 2]);
        assert_eq!(csr.row(2), &[] as &[usize]);
        assert_eq!(csr.row_len(3), 3);
        assert_eq!(csr.num_empty_rows(), 1);
        assert_eq!(csr.to_lists(), lists);
        assert_eq!(&csr[3], &[0, 1, 2]);
    }

    #[test]
    fn empty_container() {
        let csr = Csr::<u32>::empty();
        assert_eq!(csr.num_rows(), 0);
        assert_eq!(csr.num_values(), 0);
        assert_eq!(csr, Csr::from_lists(&[]));
    }

    #[test]
    fn from_parts_validates_and_decomposes() {
        let csr = Csr::from_parts(vec![0, 2, 2, 3], vec![1, 2, 0]);
        assert_eq!(csr.row(0), &[1, 2]);
        assert_eq!(csr.row(1), &[] as &[i32]);
        assert_eq!(csr.row(2), &[0]);
        let (offsets, values) = csr.into_parts();
        assert_eq!(offsets, vec![0, 2, 2, 3]);
        assert_eq!(values, vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "cover values")]
    fn from_parts_rejects_short_offsets() {
        Csr::from_parts(vec![0, 1], vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_parts_rejects_decreasing_offsets() {
        Csr::from_parts(vec![0, 2, 1, 3], vec![1, 2, 0]);
    }

    #[test]
    fn generic_over_non_copy_values() {
        let csr = Csr::from_lists(&[vec!["a".to_string()], vec![], vec!["b".into(), "c".into()]]);
        assert_eq!(csr.row(2), &["b".to_string(), "c".to_string()]);
    }
}
