//! Parallel prefix sum (exclusive scan).
//!
//! The paper uses prefix sums as the workhorse behind filter, integer sort,
//! and the blocked BCP early-termination scheme. The classic algorithm does
//! O(n) work in O(log n) depth; here we use the equivalent blocked two-pass
//! formulation (per-block sums, scan of the block sums, per-block writes),
//! which has the same bounds when the number of blocks is O(n / log n).

use crate::util::{block_ranges, par_blocks};
use rayon::prelude::*;
use std::ops::Add;

/// Computes the exclusive prefix sum of `input` and returns
/// `(prefix, total)`, where `prefix[i] = input[0] + … + input[i-1]`
/// (with `prefix[0] = zero`) and `total` is the sum of all elements.
///
/// Work O(n), depth O(log n).
pub fn prefix_sum_with_total<T>(input: &[T], zero: T) -> (Vec<T>, T)
where
    T: Copy + Send + Sync + Add<Output = T>,
{
    let n = input.len();
    if n == 0 {
        return (Vec::new(), zero);
    }
    let ranges = block_ranges(n, 1024);
    // Phase 1: per-block totals.
    let block_sums: Vec<T> = ranges
        .par_iter()
        .map(|&(s, e)| {
            let mut acc = zero;
            for v in &input[s..e] {
                acc = acc + *v;
            }
            acc
        })
        .collect();
    // Scan of the block totals (few blocks, serial is fine and deterministic).
    let mut block_offsets = Vec::with_capacity(block_sums.len());
    let mut running = zero;
    for bs in &block_sums {
        block_offsets.push(running);
        running = running + *bs;
    }
    let total = running;
    // Phase 2: per-block exclusive scans shifted by the block offset.
    let mut out = vec![zero; n];
    let out_chunks: Vec<(usize, usize)> = ranges.clone();
    // Write each block's segment of the output in parallel.
    let out_ptr: Vec<&mut [T]> = split_at_ranges(&mut out, &out_chunks);
    out_ptr
        .into_par_iter()
        .zip(out_chunks.par_iter())
        .zip(block_offsets.par_iter())
        .for_each(|((out_block, &(s, e)), &offset)| {
            let mut acc = offset;
            for (o, v) in out_block.iter_mut().zip(&input[s..e]) {
                *o = acc;
                acc = acc + *v;
            }
        });
    (out, total)
}

/// Computes the exclusive prefix sum of `input` (see
/// [`prefix_sum_with_total`]) and discards the total.
pub fn prefix_sum<T>(input: &[T], zero: T) -> Vec<T>
where
    T: Copy + Send + Sync + Add<Output = T>,
{
    prefix_sum_with_total(input, zero).0
}

/// In-place exclusive prefix sum over a `usize` slice; returns the total.
/// This is the variant used by filter and integer sort, where the counts
/// array is reused as the offsets array.
pub fn prefix_sum_inplace(values: &mut [usize]) -> usize {
    let n = values.len();
    if n == 0 {
        return 0;
    }
    // For small inputs the serial scan is faster and exactly equivalent.
    if n < 4096 {
        let mut acc = 0usize;
        for v in values.iter_mut() {
            let old = *v;
            *v = acc;
            acc += old;
        }
        return acc;
    }
    let snapshot: Vec<usize> = values.to_vec();
    let (scanned, total) = prefix_sum_with_total(&snapshot, 0usize);
    values.copy_from_slice(&scanned);
    total
}

/// Splits `data` into the mutable sub-slices described by `ranges`
/// (which must be contiguous, sorted and cover a prefix of `data`).
fn split_at_ranges<'a, T>(data: &'a mut [T], ranges: &[(usize, usize)]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut rest = data;
    let mut consumed = 0usize;
    for &(s, e) in ranges {
        debug_assert_eq!(s, consumed);
        let (head, tail) = rest.split_at_mut(e - s);
        out.push(head);
        rest = tail;
        consumed = e;
    }
    out
}

/// Sums the elements of `input` in parallel (a convenience reduction used by
/// MarkCore's range counting).
pub fn par_sum(input: &[usize]) -> usize {
    par_blocks(input.len(), 2048, |s, e| input[s..e].iter().sum::<usize>())
        .into_iter()
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_prefix(input: &[i64]) -> (Vec<i64>, i64) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0i64;
        for v in input {
            out.push(acc);
            acc += v;
        }
        (out, acc)
    }

    #[test]
    fn empty_input() {
        let (p, t) = prefix_sum_with_total::<i64>(&[], 0);
        assert!(p.is_empty());
        assert_eq!(t, 0);
    }

    #[test]
    fn single_element() {
        let (p, t) = prefix_sum_with_total(&[42i64], 0);
        assert_eq!(p, vec![0]);
        assert_eq!(t, 42);
    }

    #[test]
    fn matches_reference_on_various_sizes() {
        for n in [2usize, 17, 100, 1000, 5000, 20000] {
            let input: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % 101 - 50).collect();
            let (got, got_total) = prefix_sum_with_total(&input, 0);
            let (want, want_total) = reference_prefix(&input);
            assert_eq!(got, want, "n = {n}");
            assert_eq!(got_total, want_total, "n = {n}");
        }
    }

    #[test]
    fn inplace_matches_out_of_place() {
        let input: Vec<usize> = (0..10_000).map(|i| i % 13).collect();
        let mut inplace = input.clone();
        let total = prefix_sum_inplace(&mut inplace);
        let (expect, expect_total) = prefix_sum_with_total(&input, 0usize);
        assert_eq!(inplace, expect);
        assert_eq!(total, expect_total);
    }

    #[test]
    fn par_sum_matches_iter_sum() {
        let input: Vec<usize> = (0..50_000).map(|i| i % 7).collect();
        assert_eq!(par_sum(&input), input.iter().sum::<usize>());
    }
}
