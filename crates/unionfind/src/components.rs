//! Parallel connected components over an explicit edge list.
//!
//! After the cell graph is built explicitly (the Delaunay-based 2D method
//! produces its edges via a parallel filter of the triangulation), the paper
//! runs a parallel connected-components algorithm on the O(n)-size graph.
//! Here we union all edges in parallel into a [`ConcurrentUnionFind`] and
//! then extract canonical labels, which matches the linear-work randomized
//! CC algorithms in spirit and is the standard practical choice.

use crate::concurrent::ConcurrentUnionFind;
use rayon::prelude::*;

/// Computes connected components of an undirected graph on `num_vertices`
/// vertices given by `edges`. Returns `(labels, num_components)` where
/// `labels[v]` is a canonical component id in `0..num_components`
/// (components are numbered by their smallest vertex, densely re-indexed in
/// increasing order of that smallest vertex).
pub fn connected_components(num_vertices: usize, edges: &[(usize, usize)]) -> (Vec<usize>, usize) {
    let uf = ConcurrentUnionFind::new(num_vertices);
    edges.par_iter().for_each(|&(a, b)| {
        assert!(
            a < num_vertices && b < num_vertices,
            "edge endpoint out of range"
        );
        uf.union(a, b);
    });
    component_labels(&uf)
}

/// Extracts dense component labels from a quiescent union-find. Returns
/// `(labels, num_components)`; labels are assigned in increasing order of
/// each component's smallest member, so the output is deterministic
/// regardless of the union order.
pub fn component_labels(uf: &ConcurrentUnionFind) -> (Vec<usize>, usize) {
    let n = uf.len();
    let roots: Vec<usize> = (0..n).into_par_iter().map(|i| uf.find(i)).collect();
    // The canonical representative of a component is its minimum vertex id,
    // which for our link-by-smaller-index scheme is the root itself; we still
    // re-derive it to stay correct for any union-find policy.
    let mut is_root = vec![false; n];
    for &r in &roots {
        is_root[r] = true;
    }
    let mut remap = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        if is_root[v] {
            remap[v] = next;
            next += 1;
        }
    }
    let labels: Vec<usize> = roots.par_iter().map(|&r| remap[r]).collect();
    (labels, next)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_edges_means_singletons() {
        let (labels, k) = connected_components(5, &[]);
        assert_eq!(k, 5);
        assert_eq!(labels, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_component_chain() {
        let edges: Vec<(usize, usize)> = (0..999).map(|i| (i, i + 1)).collect();
        let (labels, k) = connected_components(1000, &edges);
        assert_eq!(k, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn two_components_labelled_deterministically() {
        let edges = vec![(0, 2), (2, 4), (1, 3), (3, 5)];
        let (labels, k) = connected_components(6, &edges);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[2], labels[4]);
        assert_eq!(labels[1], labels[3]);
        assert_eq!(labels[3], labels[5]);
        assert_ne!(labels[0], labels[1]);
        // Component containing vertex 0 gets label 0.
        assert_eq!(labels[0], 0);
        assert_eq!(labels[1], 1);
    }

    #[test]
    fn self_loops_and_duplicate_edges_are_harmless() {
        let edges = vec![(0, 0), (1, 2), (2, 1), (1, 2)];
        let (labels, k) = connected_components(3, &edges);
        assert_eq!(k, 2);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn zero_vertices() {
        let (labels, k) = connected_components(0, &[]);
        assert!(labels.is_empty());
        assert_eq!(k, 0);
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..5 {
            let n = rng.gen_range(1..500);
            let m = rng.gen_range(0..1000);
            let edges: Vec<(usize, usize)> = (0..m)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            let (labels, k) = connected_components(n, &edges);
            // Reference via sequential union-find.
            let mut seq = crate::SequentialUnionFind::new(n);
            for &(a, b) in &edges {
                seq.union(a, b);
            }
            assert_eq!(k, seq.num_sets());
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(labels[i] == labels[j], seq.same_set(i, j));
                }
            }
        }
    }
}
