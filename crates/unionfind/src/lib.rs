//! Lock-free concurrent union-find and parallel connected components.
//!
//! The paper's ClusterCore step (Algorithm 3) merges the cell-graph
//! construction with the connected-components computation using a *lock-free*
//! union-find structure (unlike PDSDBSCAN's lock-based one): a cell
//! connectivity query is only issued when the two cells are not already in
//! the same component, and on success the two cells are linked.
//!
//! [`ConcurrentUnionFind`] implements the standard CAS-based scheme with path
//! halving; all operations are wait-free except the CAS retry loop in
//! `union`. The [`connected_components`] function runs the union-find over an
//! explicit edge list in parallel (used by the Delaunay-based cell-graph
//! construction, where the edges are produced by a filter over the
//! triangulation rather than by on-the-fly connectivity queries).
//!
//! [`DynamicUnionFind`] serves the *incremental* maintenance path
//! (`dbscan-stream`): it tracks the members of every component explicitly
//! and supports growing the element set and dissolving one component back
//! into singletons, which is how deletions that may split a cluster are
//! scoped to re-clustering the affected component only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod components;
pub mod concurrent;
pub mod dynamic;
pub mod sequential;

pub use components::{component_labels, connected_components};
pub use concurrent::ConcurrentUnionFind;
pub use dynamic::DynamicUnionFind;
pub use sequential::SequentialUnionFind;
