//! A growable union-find with component-membership tracking and component
//! resets, for incremental cluster maintenance.
//!
//! The streaming DBSCAN subsystem (`dbscan-stream`) maintains cluster
//! components under point insertions and deletions. Insertions only *merge*
//! components, which an ordinary union-find handles; deletions may *split*
//! one, which union-find famously cannot undo edge-by-edge. The paper-shaped
//! way out is to re-derive connectivity for the affected component only — and
//! for that the structure must answer "which elements are in this component?"
//! in output-sensitive time, and must support dissolving a component back
//! into singletons before its region is re-linked.
//!
//! [`DynamicUnionFind`] therefore differs from [`crate::ConcurrentUnionFind`]
//! in three ways:
//!
//! * every root owns an explicit member list, merged small-into-large on
//!   union (each element is re-parented O(log n) times in total);
//! * because the *whole* smaller list is re-parented on every union, the
//!   forest has depth ≤ 1 — `find` is a single array read;
//! * [`DynamicUnionFind::reset_component`] dissolves one component into
//!   singletons, returning its former members so the caller can re-link the
//!   survivors.
//!
//! The structure is sequential (`&mut self` for mutations): the streaming
//! update path applies batches one at a time and parallelizes *inside* the
//! geometric phases, not across union-find mutations.

/// A growable union-find over the elements `0..len` with per-component
/// member lists and component resets.
#[derive(Debug, Clone)]
pub struct DynamicUnionFind {
    /// Invariant: `parent[x]` is always the root of `x`'s component (depth
    /// ≤ 1), maintained by re-parenting the smaller side of every union.
    parent: Vec<usize>,
    /// `members[r]` lists the component of root `r`; empty for non-roots.
    members: Vec<Vec<usize>>,
}

impl DynamicUnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        DynamicUnionFind {
            parent: (0..len).collect(),
            members: (0..len).map(|i| vec![i]).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Appends a new singleton element and returns its id.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.members.push(vec![id]);
        id
    }

    /// The root of `x`'s component. O(1) thanks to the depth-≤-1 invariant.
    pub fn find(&self, x: usize) -> usize {
        self.parent[x]
    }

    /// Returns `true` if `a` and `b` are in the same component.
    pub fn same_set(&self, a: usize, b: usize) -> bool {
        self.parent[a] == self.parent[b]
    }

    /// The members of `x`'s component (in no particular order).
    pub fn members(&self, x: usize) -> &[usize] {
        &self.members[self.parent[x]]
    }

    /// Size of `x`'s component.
    pub fn component_size(&self, x: usize) -> usize {
        self.members[self.parent[x]].len()
    }

    /// Unions the components of `a` and `b`; the smaller member list is
    /// re-parented under the larger's root. Returns `true` if a link
    /// happened (`false` if already connected).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.parent[a];
        let rb = self.parent[b];
        if ra == rb {
            return false;
        }
        let (small, large) = if self.members[ra].len() <= self.members[rb].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let moved = std::mem::take(&mut self.members[small]);
        for &m in &moved {
            self.parent[m] = large;
        }
        self.members[large].extend(moved);
        true
    }

    /// Dissolves `x`'s component: every member becomes a singleton again.
    /// Returns the former member list so the caller can re-link the part of
    /// it that should stay connected (the split path of the streaming
    /// clusterer: reset the affected component, then re-derive its region's
    /// connectivity from scratch).
    pub fn reset_component(&mut self, x: usize) -> Vec<usize> {
        let root = self.parent[x];
        let moved = std::mem::take(&mut self.members[root]);
        for &m in &moved {
            self.parent[m] = m;
            self.members[m] = vec![m];
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<usize>) -> Vec<usize> {
        v.sort_unstable();
        v
    }

    #[test]
    fn singletons_then_unions_track_members() {
        let mut uf = DynamicUnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0), "already connected");
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(0, 3));
        assert_eq!(sorted(uf.members(1).to_vec()), vec![0, 1]);
        assert_eq!(sorted(uf.members(4).to_vec()), vec![3, 4]);
        assert_eq!(uf.component_size(2), 1);
    }

    #[test]
    fn parent_always_points_at_root() {
        let mut uf = DynamicUnionFind::new(64);
        for i in 0..63 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..64 {
            assert_eq!(uf.find(i), root);
            assert_eq!(uf.parent[i], root, "depth must be at most 1");
        }
        assert_eq!(uf.component_size(17), 64);
    }

    #[test]
    fn push_grows_with_singletons() {
        let mut uf = DynamicUnionFind::new(2);
        let id = uf.push();
        assert_eq!(id, 2);
        assert_eq!(uf.len(), 3);
        assert_eq!(uf.members(id), &[id]);
        uf.union(0, id);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(1, 2));
    }

    #[test]
    fn reset_component_restores_singletons() {
        let mut uf = DynamicUnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(4, 5);
        let members = uf.reset_component(2);
        assert_eq!(sorted(members), vec![0, 1, 2]);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.members(i), &[i]);
        }
        // Untouched components survive.
        assert!(uf.same_set(4, 5));
        // The reset elements can be re-linked differently.
        uf.union(0, 2);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(0, 1));
    }

    #[test]
    fn matches_sequential_reference_on_random_unions() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(21);
        let n = 500;
        let mut uf = DynamicUnionFind::new(n);
        let mut seq = crate::SequentialUnionFind::new(n);
        for _ in 0..2_000 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            assert_eq!(uf.union(a, b), seq.union(a, b));
        }
        for i in 0..n {
            for j in [0, i / 3, n - 1] {
                assert_eq!(uf.same_set(i, j), seq.same_set(i, j));
            }
            assert!(uf.members(i).contains(&i));
        }
    }
}
