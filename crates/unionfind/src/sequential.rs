//! Sequential union-find with path compression and union by size.
//!
//! Used by the sequential baseline implementations and as the reference
//! oracle in tests of the concurrent structure.

/// Classic array-based disjoint-set forest (path compression + union by
/// size). Amortized near-constant time per operation.
#[derive(Debug, Clone)]
pub struct SequentialUnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    num_sets: usize,
}

impl SequentialUnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        SequentialUnionFind {
            parent: (0..len).collect(),
            size: vec![1; len],
            num_sets: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Root of the set containing `x`, with full path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (small, large) = if self.size[ra] < self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = large;
        self.size[large] += self.size[small];
        self.num_sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_reduces_set_count() {
        let mut uf = SequentialUnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_sets(), 3);
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = SequentialUnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(4, 5);
        uf.union(1, 3);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(0, 4));
    }

    #[test]
    fn find_is_idempotent_after_compression() {
        let mut uf = SequentialUnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let r = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), r);
        }
    }
}
