//! CAS-based lock-free union-find.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A concurrent union-find (disjoint-set) structure over the elements
/// `0..len`. `find` uses path halving; `union` links by index order after
/// finding the two roots, retrying on contention. Both operations may be
/// called concurrently from any number of threads.
///
/// The structure is linearizable for the operations the DBSCAN algorithms
/// need: `union(a, b)` guarantees that afterwards `same_set(a, b)`, and
/// `same_set` never reports two elements connected unless a chain of unions
/// connected them.
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicUsize>,
}

impl ConcurrentUnionFind {
    /// Creates a structure with `len` singleton sets.
    pub fn new(len: usize) -> Self {
        ConcurrentUnionFind {
            parent: (0..len).map(AtomicUsize::new).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Returns the current root of `x`'s set, compressing paths as it goes
    /// (path halving). The returned root is stable only in quiescent states;
    /// concurrent unions may change it, which is fine for the optimistic
    /// "check before querying connectivity" pattern of Algorithm 3.
    pub fn find(&self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p].load(Ordering::Acquire);
            if gp == p {
                return p;
            }
            // Path halving: point x at its grandparent. Failure is benign.
            let _ = self.parent[x].compare_exchange(p, gp, Ordering::AcqRel, Ordering::Acquire);
            x = gp;
        }
    }

    /// Unions the sets containing `a` and `b`. Returns `true` if the two were
    /// in different sets (a link happened), `false` if they were already
    /// connected. Lock-free: concurrent unions retry on CAS failure.
    pub fn union(&self, a: usize, b: usize) -> bool {
        let mut x = a;
        let mut y = b;
        loop {
            x = self.find(x);
            y = self.find(y);
            if x == y {
                return false;
            }
            // Deterministic link direction (larger root points to smaller),
            // which keeps the forest acyclic without a separate rank array.
            let (child, parent) = if x > y { (x, y) } else { (y, x) };
            match self.parent[child].compare_exchange(
                child,
                parent,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    // Someone re-parented `child` concurrently; retry from the
                    // (possibly new) roots.
                    x = child;
                    y = parent;
                }
            }
        }
    }

    /// Returns `true` if `a` and `b` are currently in the same set.
    pub fn same_set(&self, a: usize, b: usize) -> bool {
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            // ra != rb is only conclusive if ra is still a root (otherwise a
            // concurrent union interleaved and we must retry).
            if self.parent[ra].load(Ordering::Acquire) == ra {
                return false;
            }
        }
    }

    /// Snapshot of the root of every element. Call in a quiescent state
    /// (after all unions have completed) to extract final component labels.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len()).map(|i| self.find(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let uf = ConcurrentUnionFind::new(10);
        for i in 0..10 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_connects_and_reports_novelty() {
        let uf = ConcurrentUnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.same_set(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same_set(0, 2));
        assert!(!uf.union(0, 3), "already connected");
    }

    #[test]
    fn concurrent_chain_unions_connect_everything() {
        let n = 100_000;
        let uf = ConcurrentUnionFind::new(n);
        (0..n - 1).into_par_iter().for_each(|i| {
            uf.union(i, i + 1);
        });
        let root = uf.find(0);
        (0..n).into_par_iter().for_each(|i| {
            assert_eq!(uf.find(i), root);
        });
    }

    #[test]
    fn concurrent_random_unions_match_sequential() {
        use rand::prelude::*;
        let n = 10_000;
        let mut rng = StdRng::seed_from_u64(5);
        let edges: Vec<(usize, usize)> = (0..20_000)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let uf = ConcurrentUnionFind::new(n);
        edges.par_iter().for_each(|&(a, b)| {
            uf.union(a, b);
        });
        let mut seq = crate::SequentialUnionFind::new(n);
        for &(a, b) in &edges {
            seq.union(a, b);
        }
        for i in 0..n {
            for j in [0, i / 2, n - 1] {
                assert_eq!(uf.same_set(i, j), seq.same_set(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn empty_structure() {
        let uf = ConcurrentUnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.roots().is_empty());
    }
}
