//! Structured span tracing: RAII guards and the process-wide ring buffer.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Capacity of the process-wide span ring buffer. Oldest records are
/// overwritten once full; [`trace_dropped`] counts the casualties.
pub const RING_CAPACITY: usize = 8192;

/// One completed span: a phase of work on one clustering path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Which layer emitted the span: `"core"`, `"engine"`, `"stream"`, or
    /// `"session"`.
    pub path: &'static str,
    /// Phase name — one of the [`crate::phase`] constants.
    pub phase: &'static str,
    /// The ε the phase ran under, or `NaN` when not applicable.
    pub eps: f64,
    /// The minPts the phase ran under, or 0 when not applicable.
    pub min_pts: usize,
    /// Problem size the phase saw (points, pairs, or batch updates —
    /// whatever the instrumented site counts its work in).
    pub n: usize,
    /// Wall-clock duration from guard construction to drop.
    pub duration: Duration,
    /// Process-unique id of the recording thread ([`crate::thread_id`]).
    pub thread: u64,
}

struct Ring {
    buf: Vec<SpanRecord>,
    /// Index of the oldest record when `buf` is full.
    start: usize,
    dropped: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring {
    buf: Vec::new(),
    start: 0,
    dropped: 0,
});

fn ring() -> std::sync::MutexGuard<'static, Ring> {
    // A panic while holding the lock can only happen on OOM pushing into
    // `buf`; the ring contents stay structurally valid either way.
    RING.lock().unwrap_or_else(|e| e.into_inner())
}

fn record(rec: SpanRecord) {
    let mut ring = ring();
    if ring.buf.len() < RING_CAPACITY {
        ring.buf.push(rec);
    } else {
        let start = ring.start;
        ring.buf[start] = rec;
        ring.start = (start + 1) % RING_CAPACITY;
        ring.dropped += 1;
    }
}

/// Drain every recorded span, oldest first, leaving the buffer empty.
///
/// Spans only record under `DBSCAN_OBS=trace`; in other modes this always
/// returns an empty vector.
pub fn take_trace() -> Vec<SpanRecord> {
    let mut ring = ring();
    let start = ring.start;
    ring.start = 0;
    let mut buf = std::mem::take(&mut ring.buf);
    buf.rotate_left(start);
    buf
}

/// Number of spans currently buffered (capped at the ring capacity).
pub fn trace_len() -> usize {
    ring().buf.len()
}

/// Total spans overwritten because the ring buffer was full.
pub fn trace_dropped() -> u64 {
    ring().dropped
}

struct ActiveSpan {
    path: &'static str,
    phase: &'static str,
    eps: f64,
    min_pts: usize,
    n: usize,
    start: Instant,
}

/// RAII span guard: times the enclosing scope and records a [`SpanRecord`]
/// on drop. When tracing is disabled ([`crate::trace_enabled`] is false) the
/// guard is inert — construction takes one atomic load and drop does
/// nothing.
///
/// ```
/// let _span = obs::Span::enter("core", obs::phase::MARK_CORE)
///     .eps(0.5)
///     .min_pts(10)
///     .n(100_000);
/// // ... phase work; the span records when `_span` drops ...
/// ```
#[must_use = "a span records the time until it is dropped; binding it to _ drops it immediately"]
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Start a span on `path` (the emitting layer) for `phase` (one of
    /// [`crate::phase`]). No-op unless `DBSCAN_OBS=trace`.
    pub fn enter(path: &'static str, phase: &'static str) -> Span {
        if !crate::trace_enabled() {
            return Span(None);
        }
        Span(Some(ActiveSpan {
            path,
            phase,
            eps: f64::NAN,
            min_pts: 0,
            n: 0,
            start: Instant::now(),
        }))
    }

    /// Attach the ε this phase runs under.
    pub fn eps(mut self, eps: f64) -> Span {
        if let Some(a) = self.0.as_mut() {
            a.eps = eps;
        }
        self
    }

    /// Attach the minPts this phase runs under.
    pub fn min_pts(mut self, min_pts: usize) -> Span {
        if let Some(a) = self.0.as_mut() {
            a.min_pts = min_pts;
        }
        self
    }

    /// Attach the problem size this phase saw.
    pub fn n(mut self, n: usize) -> Span {
        if let Some(a) = self.0.as_mut() {
            a.n = n;
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            record(SpanRecord {
                path: a.path,
                phase: a.phase,
                eps: a.eps,
                min_pts: a.min_pts,
                n: a.n,
                duration: a.start.elapsed(),
                thread: crate::thread_id(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring is process-wide; serialize the tests that drain it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn rec(n: usize) -> SpanRecord {
        SpanRecord {
            path: "core",
            phase: crate::phase::MARK_CORE,
            eps: 1.0,
            min_pts: 2,
            n,
            duration: Duration::from_micros(n as u64),
            thread: crate::thread_id(),
        }
    }

    #[test]
    fn ring_drains_in_order_and_overwrites_oldest() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = take_trace();
        for i in 0..3 {
            record(rec(i));
        }
        let got = take_trace();
        assert_eq!(got.iter().map(|r| r.n).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(trace_len(), 0);

        let dropped_before = trace_dropped();
        for i in 0..RING_CAPACITY + 5 {
            record(rec(i));
        }
        let got = take_trace();
        assert_eq!(got.len(), RING_CAPACITY);
        assert_eq!(got.first().unwrap().n, 5);
        assert_eq!(got.last().unwrap().n, RING_CAPACITY + 4);
        assert_eq!(trace_dropped() - dropped_before, 5);
    }

    #[test]
    fn span_guard_is_inert_when_tracing_disabled() {
        // The test process does not set DBSCAN_OBS=trace (mode defaults to
        // counters), so guards must record nothing.
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = take_trace();
        {
            let _span = Span::enter("core", crate::phase::PARTITION)
                .eps(0.1)
                .min_pts(5)
                .n(42);
        }
        assert_eq!(trace_len(), 0);
    }
}
