//! Structured span tracing: RAII guards and the process-wide ring buffer.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Capacity of the process-wide span ring buffer. Oldest records are
/// overwritten once full; [`trace_dropped`] counts the casualties.
pub const RING_CAPACITY: usize = 8192;

/// The process trace epoch: every span's [`SpanRecord::start`] offset is
/// measured from this instant. Pinned on the first span construction so the
/// epoch always precedes every recorded start.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span: a phase of work on one clustering path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Which layer emitted the span: `"core"`, `"engine"`, `"stream"`, or
    /// `"session"`.
    pub path: &'static str,
    /// Phase name — one of the [`crate::phase`] constants.
    pub phase: &'static str,
    /// The ε the phase ran under, or `NaN` when not applicable.
    pub eps: f64,
    /// The minPts the phase ran under, or 0 when not applicable.
    pub min_pts: usize,
    /// Problem size the phase saw (points, pairs, or batch updates —
    /// whatever the instrumented site counts its work in).
    pub n: usize,
    /// When the span started, as an offset from the process trace epoch
    /// (the first span construction). Monotonic across threads, so traces
    /// from different threads line up on one timeline.
    pub start: Duration,
    /// Wall-clock duration from guard construction to drop.
    pub duration: Duration,
    /// Process-unique id of the recording thread ([`crate::thread_id`]).
    pub thread: u64,
    /// Process-wide record sequence number, assigned at record time under
    /// the ring lock. Strictly increasing; [`spans_since`] uses it to read
    /// "everything recorded after instant X" without draining the ring.
    pub seq: u64,
}

struct Ring {
    buf: Vec<SpanRecord>,
    /// Index of the oldest record when `buf` is full.
    start: usize,
    dropped: u64,
    /// Next sequence number to assign (== total spans ever recorded).
    next_seq: u64,
}

static RING: Mutex<Ring> = Mutex::new(Ring {
    buf: Vec::new(),
    start: 0,
    dropped: 0,
    next_seq: 0,
});

fn ring() -> std::sync::MutexGuard<'static, Ring> {
    // A panic while holding the lock can only happen on OOM pushing into
    // `buf`; the ring contents stay structurally valid either way.
    RING.lock().unwrap_or_else(|e| e.into_inner())
}

fn record(mut rec: SpanRecord) {
    let mut ring = ring();
    rec.seq = ring.next_seq;
    ring.next_seq += 1;
    if ring.buf.len() < RING_CAPACITY {
        ring.buf.push(rec);
    } else {
        let start = ring.start;
        ring.buf[start] = rec;
        ring.start = (start + 1) % RING_CAPACITY;
        ring.dropped += 1;
    }
}

/// Drain every recorded span, oldest first, leaving the buffer empty.
///
/// Spans only record under `DBSCAN_OBS=trace`; in other modes this always
/// returns an empty vector.
pub fn take_trace() -> Vec<SpanRecord> {
    let mut ring = ring();
    let start = ring.start;
    ring.start = 0;
    let mut buf = std::mem::take(&mut ring.buf);
    buf.rotate_left(start);
    buf
}

/// The next sequence number the ring will assign — i.e. the total number of
/// spans ever recorded in this process. Sample it before an operation, then
/// pass it to [`spans_since`] afterwards to read just that operation's spans.
pub fn trace_seq() -> u64 {
    ring().next_seq
}

/// Clone every buffered span with `seq >= seq_floor`, oldest first,
/// **without** draining the ring. If the ring wrapped past `seq_floor`
/// (visible as a [`trace_dropped`] increase) the earliest spans are gone.
pub fn spans_since(seq_floor: u64) -> Vec<SpanRecord> {
    let ring = ring();
    let len = ring.buf.len();
    let mut out = Vec::new();
    for i in 0..len {
        let rec = &ring.buf[(ring.start + i) % len.max(1)];
        if rec.seq >= seq_floor {
            out.push(rec.clone());
        }
    }
    out
}

/// Number of spans currently buffered (capped at the ring capacity).
pub fn trace_len() -> usize {
    ring().buf.len()
}

/// Total spans overwritten because the ring buffer was full.
pub fn trace_dropped() -> u64 {
    ring().dropped
}

struct ActiveSpan {
    path: &'static str,
    phase: &'static str,
    eps: f64,
    min_pts: usize,
    n: usize,
    start: Instant,
}

/// RAII span guard: times the enclosing scope and records a [`SpanRecord`]
/// on drop. When tracing is disabled ([`crate::trace_enabled`] is false) the
/// guard is inert — construction takes one atomic load and drop does
/// nothing.
///
/// ```
/// let _span = obs::Span::enter("core", obs::phase::MARK_CORE)
///     .eps(0.5)
///     .min_pts(10)
///     .n(100_000);
/// // ... phase work; the span records when `_span` drops ...
/// ```
#[must_use = "a span records the time until it is dropped; binding it to _ drops it immediately"]
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Start a span on `path` (the emitting layer) for `phase` (one of
    /// [`crate::phase`]). No-op unless `DBSCAN_OBS=trace`.
    pub fn enter(path: &'static str, phase: &'static str) -> Span {
        if !crate::trace_enabled() {
            return Span(None);
        }
        // Pin the epoch before sampling `start` so the offset can't go
        // negative even for the very first span.
        epoch();
        Span(Some(ActiveSpan {
            path,
            phase,
            eps: f64::NAN,
            min_pts: 0,
            n: 0,
            start: Instant::now(),
        }))
    }

    /// Attach the ε this phase runs under.
    pub fn eps(mut self, eps: f64) -> Span {
        if let Some(a) = self.0.as_mut() {
            a.eps = eps;
        }
        self
    }

    /// Attach the minPts this phase runs under.
    pub fn min_pts(mut self, min_pts: usize) -> Span {
        if let Some(a) = self.0.as_mut() {
            a.min_pts = min_pts;
        }
        self
    }

    /// Attach the problem size this phase saw.
    pub fn n(mut self, n: usize) -> Span {
        if let Some(a) = self.0.as_mut() {
            a.n = n;
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            record(SpanRecord {
                path: a.path,
                phase: a.phase,
                eps: a.eps,
                min_pts: a.min_pts,
                n: a.n,
                start: a.start.saturating_duration_since(epoch()),
                duration: a.start.elapsed(),
                thread: crate::thread_id(),
                seq: 0, // assigned by `record` under the ring lock
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ring is process-wide; serialize the tests that drain it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn rec(n: usize) -> SpanRecord {
        SpanRecord {
            path: "core",
            phase: crate::phase::MARK_CORE,
            eps: 1.0,
            min_pts: 2,
            n,
            start: Duration::from_micros(n as u64),
            duration: Duration::from_micros(n as u64),
            thread: crate::thread_id(),
            seq: 0,
        }
    }

    #[test]
    fn ring_drains_in_order_and_overwrites_oldest() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = take_trace();
        for i in 0..3 {
            record(rec(i));
        }
        let got = take_trace();
        assert_eq!(got.iter().map(|r| r.n).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(trace_len(), 0);

        let dropped_before = trace_dropped();
        for i in 0..RING_CAPACITY + 5 {
            record(rec(i));
        }
        let got = take_trace();
        assert_eq!(got.len(), RING_CAPACITY);
        assert_eq!(got.first().unwrap().n, 5);
        assert_eq!(got.last().unwrap().n, RING_CAPACITY + 4);
        assert_eq!(trace_dropped() - dropped_before, 5);
    }

    #[test]
    fn spans_since_reads_without_draining() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = take_trace();
        for i in 0..4 {
            record(rec(i));
        }
        let floor = trace_seq();
        for i in 10..13 {
            record(rec(i));
        }
        let got = spans_since(floor);
        assert_eq!(
            got.iter().map(|r| r.n).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
        // Non-draining: everything is still in the ring, in order.
        assert_eq!(trace_len(), 7);
        let all = take_trace();
        assert_eq!(all.len(), 7);
        // Sequence numbers are strictly increasing in drain order.
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn span_guard_is_inert_when_tracing_disabled() {
        // The test process does not set DBSCAN_OBS=trace (mode defaults to
        // counters), so guards must record nothing.
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = take_trace();
        {
            let _span = Span::enter("core", crate::phase::PARTITION)
                .eps(0.1)
                .min_pts(5)
                .n(42);
        }
        assert_eq!(trace_len(), 0);
    }

    /// Satellite: threads record spans while another thread drains the ring.
    /// No record may be lost to a cursor race — every span either comes out
    /// of a `take_trace` call or is accounted for by `trace_dropped`.
    #[test]
    fn concurrent_record_and_drain_lose_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        let _ = take_trace();
        let dropped_before = trace_dropped();
        let seq_before = trace_seq();

        const WRITERS: usize = 4;
        const PER_WRITER: usize = 5_000;
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let drained = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    got.extend(take_trace());
                }
                got.extend(take_trace());
                got
            })
        };
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                std::thread::spawn(move || {
                    for i in 0..PER_WRITER {
                        record(rec(w * PER_WRITER + i));
                    }
                })
            })
            .collect();
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        let drained = drained.join().unwrap();

        let total = (WRITERS * PER_WRITER) as u64;
        let dropped = trace_dropped() - dropped_before;
        assert_eq!(trace_seq() - seq_before, total);
        assert_eq!(drained.len() as u64 + dropped, total);
        assert_eq!(trace_len(), 0);
        // No duplicate deliveries either: all drained seqs are distinct.
        let mut seqs: Vec<u64> = drained.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), drained.len());
    }
}
