//! Scoped per-operation attribution: [`OpScope`] brackets one `query` /
//! `sweep` / `apply` and yields an [`ExplainReport`] — the EXPLAIN output
//! for that one operation, assembled from registry deltas, the span ring,
//! the worker-pool profile, and (optionally) allocation counters.
//!
//! The registry itself is process-cumulative; a scope turns it into
//! per-operation numbers by snapshotting at begin and diffing at finish.
//! The caller (the `dbscan` facade) fills in what only it knows: which
//! phases its operation ran vs. cache-skipped, and the pool busy-time
//! samples (obs stays dependency-free, so it cannot read the pool itself).
//!
//! Limitation, by design: with concurrent operations in one process the
//! counter/alloc deltas attribute *jointly* — everything that advanced
//! during the window lands in the report. Per-session isolation is the
//! serving-layer arc's problem; EXPLAIN makes single-operation attribution
//! exact and concurrent attribution visible.

use crate::alloc::AllocStats;
use crate::metrics::MetricsReport;
use crate::trace::SpanRecord;
use std::fmt;
use std::time::{Duration, Instant};

/// How one phase fared inside a scoped operation: how many times it ran,
/// how many times a cache skipped it, and the wall time of the runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseExecution {
    /// Phase name — one of the [`crate::phase`] constants.
    pub phase: &'static str,
    /// Times the phase actually executed within the operation.
    pub runs: usize,
    /// Times a cache hit skipped the phase.
    pub skips: usize,
    /// For cache skips: the index/core generation whose cached artifact
    /// satisfied the phase (so EXPLAIN shows *which* build was reused).
    pub skipped_by_generation: Option<u64>,
    /// Total wall time of the runs (zero when everything was skipped).
    pub duration: Duration,
}

impl PhaseExecution {
    /// A phase that executed once, taking `duration`.
    pub fn ran(phase: &'static str, duration: Duration) -> PhaseExecution {
        PhaseExecution {
            phase,
            runs: 1,
            skips: 0,
            skipped_by_generation: None,
            duration,
        }
    }

    /// A phase skipped by a cache hit on the artifact from `generation`.
    pub fn skipped(phase: &'static str, generation: u64) -> PhaseExecution {
        PhaseExecution {
            phase,
            runs: 0,
            skips: 1,
            skipped_by_generation: Some(generation),
            duration: Duration::ZERO,
        }
    }

    /// `true` if the phase executed at least once.
    pub fn executed(&self) -> bool {
        self.runs > 0
    }

    /// `true` if the phase was only ever cache-skipped.
    pub fn cache_skipped(&self) -> bool {
        self.runs == 0 && self.skips > 0
    }
}

/// Allocation delta over a scoped operation. `profiled` is `false` unless
/// the binary installed `obs::alloc::CountingAllocator` (requires the
/// `alloc-profile` feature), in which case the counts are process-wide
/// mallocs/frees/bytes during the window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Whether a counting allocator was active (otherwise counts are 0/0/0).
    pub profiled: bool,
    /// Allocations during the window.
    pub allocations: u64,
    /// Deallocations during the window.
    pub deallocations: u64,
    /// Bytes allocated during the window.
    pub bytes_allocated: u64,
}

/// The EXPLAIN output for one operation. Obtain it from
/// `ClusterSession::explain_last()` (the facade fills the operation-shaped
/// fields) or build one directly with [`OpScope`].
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Operation kind: `"query"`, `"sweep"`, or `"apply"`.
    pub op: &'static str,
    /// Algorithm variant label (queries) or grid summary (sweeps); empty
    /// when not applicable.
    pub variant: String,
    /// The ε the operation ran under, or `NaN` for multi-ε sweeps.
    pub eps: f64,
    /// The minPts the operation ran under, or 0 for multi-minPts sweeps.
    pub min_pts: usize,
    /// Problem size: points queried, grid cells × points swept, or batch
    /// updates applied.
    pub n: usize,
    /// End-to-end wall time of the scoped window.
    pub wall: Duration,
    /// Per-phase execution/skip accounting, in pipeline order.
    pub phases: Vec<PhaseExecution>,
    /// Grid cells the operation visited (touched cells for `apply`).
    pub cells_visited: usize,
    /// Core points the operation saw (0 when not applicable).
    pub num_core_points: usize,
    /// Every registry counter that advanced during the window, with its
    /// delta. Batched counters (`dbscan_bcp_queries_total` flushes every
    /// 256 per thread) are approximate at the window edges.
    pub counter_deltas: Vec<(String, u64)>,
    /// Worker-pool busy time attributable to the window.
    pub pool_busy: Duration,
    /// Threads available to the operation (pool workers + the caller).
    pub threads: usize,
    /// `(pool_busy + wall) / (wall × threads)` — the fraction of the
    /// machine the operation kept busy (1.0 = perfect scaling,
    /// `1/threads` = fully sequential; the caller thread works alongside
    /// the pool, hence the `+ wall`).
    pub parallel_efficiency: f64,
    /// Allocation delta (see [`AllocDelta::profiled`]).
    pub alloc: AllocDelta,
    /// Spans recorded during the window (empty unless `DBSCAN_OBS=trace`).
    pub spans: Vec<SpanRecord>,
}

impl ExplainReport {
    /// Delta of the counter named `name` during the window (0 if it did not
    /// advance).
    pub fn delta(&self, name: &str) -> u64 {
        self.counter_deltas
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, d)| *d)
    }

    /// Accounting for the phase named `phase`, if the operation involved it.
    pub fn phase(&self, phase: &str) -> Option<&PhaseExecution> {
        self.phases.iter().find(|p| p.phase == phase)
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

impl fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EXPLAIN {}", self.op)?;
        if !self.variant.is_empty() {
            write!(f, " {}", self.variant)?;
        }
        if self.eps.is_finite() {
            write!(f, " eps={}", self.eps)?;
        }
        if self.min_pts > 0 {
            write!(f, " minPts={}", self.min_pts)?;
        }
        writeln!(
            f,
            " n={}: {} wall, {} cells, {} core points",
            self.n,
            fmt_duration(self.wall),
            self.cells_visited,
            self.num_core_points
        )?;
        for p in &self.phases {
            if p.cache_skipped() {
                match p.skipped_by_generation {
                    Some(generation) => writeln!(
                        f,
                        "  {:<16} SKIP ×{} (cached, generation {})",
                        p.phase, p.skips, generation
                    )?,
                    None => writeln!(f, "  {:<16} SKIP ×{} (cached)", p.phase, p.skips)?,
                }
            } else if p.skips > 0 {
                writeln!(
                    f,
                    "  {:<16} RUN ×{} / SKIP ×{}  {}",
                    p.phase,
                    p.runs,
                    p.skips,
                    fmt_duration(p.duration)
                )?;
            } else {
                writeln!(
                    f,
                    "  {:<16} RUN ×{}  {}",
                    p.phase,
                    p.runs,
                    fmt_duration(p.duration)
                )?;
            }
        }
        writeln!(
            f,
            "  pool: {} busy on {} threads -> parallel efficiency {:.2}",
            fmt_duration(self.pool_busy),
            self.threads,
            self.parallel_efficiency
        )?;
        if !self.counter_deltas.is_empty() {
            write!(f, "  counters:")?;
            for (name, delta) in &self.counter_deltas {
                write!(f, " {name} +{delta}")?;
            }
            writeln!(f)?;
        }
        if self.alloc.profiled {
            writeln!(
                f,
                "  alloc: {} allocations, {} frees, {} bytes",
                self.alloc.allocations, self.alloc.deallocations, self.alloc.bytes_allocated
            )?;
        } else {
            writeln!(
                f,
                "  alloc: not profiled (build with --features alloc-profile)"
            )?;
        }
        write!(f, "  spans: {} recorded", self.spans.len())
    }
}

/// Brackets one operation: snapshots the registry, span ring, and
/// allocation counters at [`OpScope::begin`], diffs them at
/// [`OpScope::finish`]. See the module docs for the attribution caveats.
pub struct OpScope {
    op: &'static str,
    before: MetricsReport,
    seq_floor: u64,
    pool_busy0_ns: u64,
    alloc0: AllocStats,
    // `alloc0` is sampled last in `begin` and first again in `finish`, so
    // the scope's own snapshot allocations fall outside the alloc window.
    started: Instant,
}

impl OpScope {
    /// Open a scope for `op` with no pool sample (pool busy reads as zero).
    pub fn begin(op: &'static str) -> OpScope {
        OpScope::begin_with_pool(op, 0)
    }

    /// Open a scope for `op`. `pool_busy_ns` is the caller's sample of the
    /// worker pool's cumulative busy nanoseconds (e.g.
    /// `rayon::pool_busy_nanos()`); pass 0 if unavailable.
    pub fn begin_with_pool(op: &'static str, pool_busy_ns: u64) -> OpScope {
        let before = crate::snapshot();
        let seq_floor = crate::trace_seq();
        OpScope {
            op,
            before,
            seq_floor,
            pool_busy0_ns: pool_busy_ns,
            alloc0: crate::alloc::stats(),
            started: Instant::now(),
        }
    }

    /// Close the scope with no pool sample (efficiency computes as if the
    /// operation were single-threaded).
    pub fn finish(self) -> ExplainReport {
        self.finish_with_pool(0, 1)
    }

    /// Close the scope. `pool_busy_ns` is the pool's cumulative busy
    /// nanoseconds *now* (same source as at begin); `threads` is the
    /// parallelism the operation had available (pool workers + the caller).
    pub fn finish_with_pool(self, pool_busy_ns: u64, threads: usize) -> ExplainReport {
        let wall = self.started.elapsed();
        // Alloc first: everything finish itself allocates (snapshot, span
        // clones, the report) stays outside the measured window.
        let alloc1 = crate::alloc::stats();
        let after = crate::snapshot();
        let spans = crate::spans_since(self.seq_floor);
        let counter_deltas = after.counter_deltas(&self.before);
        let alloc_delta = alloc1.since(&self.alloc0);
        let pool_busy = Duration::from_nanos(pool_busy_ns.saturating_sub(self.pool_busy0_ns));
        let threads = threads.max(1);
        let wall_s = wall.as_secs_f64().max(1e-12);
        let parallel_efficiency =
            (pool_busy.as_secs_f64() + wall.as_secs_f64()) / (wall_s * threads as f64);
        ExplainReport {
            op: self.op,
            variant: String::new(),
            eps: f64::NAN,
            min_pts: 0,
            n: 0,
            wall,
            phases: Vec::new(),
            cells_visited: 0,
            num_core_points: 0,
            counter_deltas,
            pool_busy,
            threads,
            parallel_efficiency,
            alloc: AllocDelta {
                profiled: crate::alloc::profiling_active(),
                allocations: alloc_delta.allocations,
                deallocations: alloc_delta.deallocations,
                bytes_allocated: alloc_delta.bytes_allocated,
            },
            spans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_diffs_counters_without_bleed() {
        static C: crate::LazyCounter = crate::LazyCounter::new("obs_test_scope_total");
        let scope = OpScope::begin("query");
        C.add(5);
        let report = scope.finish();
        assert_eq!(report.delta("obs_test_scope_total"), 5);

        // A back-to-back scope must not see the first scope's advances.
        let scope = OpScope::begin("query");
        C.add(2);
        let report2 = scope.finish();
        assert_eq!(report2.delta("obs_test_scope_total"), 2);
        assert_eq!(report2.op, "query");
    }

    #[test]
    fn efficiency_accounts_for_caller_thread() {
        let scope = OpScope::begin_with_pool("sweep", 1_000);
        std::thread::sleep(Duration::from_millis(2));
        // Pool did 3× the wall in busy time on 4 threads => efficiency ≈ 1.
        let wall_ns = scope.started.elapsed().as_nanos() as u64;
        let report = scope.finish_with_pool(1_000 + 3 * wall_ns, 4);
        assert!(report.parallel_efficiency > 0.8 && report.parallel_efficiency <= 1.1);
        assert_eq!(report.threads, 4);
    }

    #[test]
    fn display_renders_phases_and_skips() {
        let scope = OpScope::begin("query");
        let mut report = scope.finish();
        report.variant = "our-exact".to_string();
        report.eps = 0.25;
        report.min_pts = 10;
        report.n = 1000;
        report.phases = vec![
            PhaseExecution::skipped(crate::phase::PARTITION, 3),
            PhaseExecution::ran(crate::phase::MARK_CORE, Duration::from_millis(4)),
        ];
        let text = report.to_string();
        assert!(text.contains("EXPLAIN query our-exact eps=0.25 minPts=10"));
        assert!(text.contains("partition"));
        assert!(text.contains("SKIP ×1 (cached, generation 3)"));
        assert!(text.contains("mark_core"));
        assert!(text.contains("RUN ×1"));
        assert!(text.contains("not profiled"));
    }
}
