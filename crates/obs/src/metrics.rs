//! The metrics registry: named atomic counters, gauges, fixed-bucket
//! duration histograms, info labels, and callback gauges, with a typed
//! snapshot and a Prometheus text-exposition exporter.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Histogram bucket upper bounds in nanoseconds: 1µs … 10s in powers of ten,
/// plus the implicit `+Inf` bucket. Durations in this workspace span
/// sub-microsecond kernel blocks to multi-second paper-scale queries.
const BUCKET_BOUNDS_NS: [u64; 8] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
];

/// A monotonically increasing named counter.
///
/// Handles are `&'static` and live in the registry; obtain one through
/// [`LazyCounter`] (the cheap, recommended path for hot call sites).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter. Not gated on the observability mode — gating
    /// happens in [`LazyCounter::add`], which skips registry access entirely
    /// when `DBSCAN_OBS=off`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A named gauge: a value that can go up and down (pool sizes, high-water
/// marks).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (atomic max — for peaks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket duration histogram (bounds: 1µs … 10s in powers of ten,
/// plus `+Inf`), tracking per-bucket counts, total count, and summed
/// duration.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len()],
    /// Observations above the last bound (the `+Inf` bucket).
    overflow: AtomicU64,
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Default::default(),
            overflow: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one duration.
    pub fn observe(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        match BUCKET_BOUNDS_NS.iter().position(|&b| ns <= b) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let mut cumulative = 0;
        let mut buckets = Vec::with_capacity(BUCKET_BOUNDS_NS.len());
        for (i, bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            buckets.push((*bound as f64 / 1e9, cumulative));
        }
        HistogramSnapshot {
            name: name.to_string(),
            buckets,
            sum_seconds: self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9,
            count: cumulative + self.overflow.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of one [`Histogram`], as captured by [`snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registry name of the histogram.
    pub name: String,
    /// `(upper_bound_seconds, cumulative_count)` per bucket, ascending; the
    /// implicit `+Inf` bucket is [`HistogramSnapshot::count`].
    pub buckets: Vec<(f64, u64)>,
    /// Sum of all observed durations, in seconds.
    pub sum_seconds: f64,
    /// Total number of observations.
    pub count: u64,
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
    Histogram(&'static Histogram),
    Info(String),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// HELP texts, keyed by metric name. Kept separate from the registry so
/// help can be attached before or after the metric itself registers.
fn helps() -> &'static Mutex<BTreeMap<&'static str, &'static str>> {
    static HELPS: OnceLock<Mutex<BTreeMap<&'static str, &'static str>>> = OnceLock::new();
    HELPS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Attach Prometheus `# HELP` text to the metric named `name`. May be called
/// before or after the metric registers; the last call wins. No-op when
/// `DBSCAN_OBS=off`.
pub fn describe(name: &'static str, help: &'static str) {
    if !crate::counters_enabled() {
        return;
    }
    helps()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(name, help);
}

fn with_registry<T>(f: impl FnOnce(&mut BTreeMap<&'static str, Metric>) -> T) -> T {
    f(&mut registry().lock().unwrap_or_else(|e| e.into_inner()))
}

/// Register (or look up) the counter named `name`.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
fn counter(name: &'static str) -> &'static Counter {
    with_registry(|reg| {
        match reg
            .entry(name)
            .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
        {
            Metric::Counter(c) => *c,
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    })
}

fn gauge(name: &'static str) -> &'static Gauge {
    with_registry(|reg| {
        match reg
            .entry(name)
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
        {
            Metric::Gauge(g) => *g,
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    })
}

fn histogram(name: &'static str) -> &'static Histogram {
    with_registry(|reg| {
        match reg
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::default())))
        {
            Metric::Histogram(h) => *h,
            _ => panic!("metric {name:?} is already registered with a different kind"),
        }
    })
}

/// Register a callback gauge: `f` is evaluated at every [`snapshot`], so
/// subsystems that keep their own counters (e.g. the worker pool) can expose
/// them without double accounting. Re-registering a name replaces the
/// callback. No-op when `DBSCAN_OBS=off`.
pub fn register_gauge_fn(name: &'static str, f: impl Fn() -> i64 + Send + Sync + 'static) {
    if !crate::counters_enabled() {
        return;
    }
    with_registry(|reg| {
        reg.insert(name, Metric::GaugeFn(Box::new(f)));
    });
}

/// Set an info label: a string-valued pseudo-metric (e.g. the active SIMD
/// backend), exported as `name{value="…"} 1`. No-op when `DBSCAN_OBS=off`.
pub fn set_info(name: &'static str, value: &str) {
    if !crate::counters_enabled() {
        return;
    }
    with_registry(|reg| {
        reg.insert(name, Metric::Info(value.to_string()));
    });
}

/// A counter handle for hot call sites: a `const`-constructible static that
/// resolves its registry entry once and gates every update on the
/// observability mode.
///
/// ```
/// static BLOCKS: obs::LazyCounter = obs::LazyCounter::new("dbscan_kernel_blocks_total");
/// BLOCKS.add(3);
/// ```
pub struct LazyCounter {
    name: &'static str,
    help: Option<&'static str>,
    slot: OnceLock<&'static Counter>,
}

impl LazyCounter {
    /// A handle for the counter named `name` (registered on first use).
    pub const fn new(name: &'static str) -> Self {
        LazyCounter {
            name,
            help: None,
            slot: OnceLock::new(),
        }
    }

    /// Like [`LazyCounter::new`], with `# HELP` text attached on first use.
    pub const fn with_help(name: &'static str, help: &'static str) -> Self {
        LazyCounter {
            name,
            help: Some(help),
            slot: OnceLock::new(),
        }
    }

    /// Resolve the underlying registry counter.
    pub fn get(&self) -> &'static Counter {
        self.slot.get_or_init(|| {
            if let Some(help) = self.help {
                describe(self.name, help);
            }
            counter(self.name)
        })
    }

    /// Add `n`, unless `DBSCAN_OBS=off` (then nothing is registered or
    /// recorded).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::counters_enabled() {
            self.get().add(n);
        }
    }

    /// Add 1 (same gating as [`LazyCounter::add`]).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// A gauge handle for hot call sites; see [`LazyCounter`].
pub struct LazyGauge {
    name: &'static str,
    help: Option<&'static str>,
    slot: OnceLock<&'static Gauge>,
}

impl LazyGauge {
    /// A handle for the gauge named `name` (registered on first use).
    pub const fn new(name: &'static str) -> Self {
        LazyGauge {
            name,
            help: None,
            slot: OnceLock::new(),
        }
    }

    /// Like [`LazyGauge::new`], with `# HELP` text attached on first use.
    pub const fn with_help(name: &'static str, help: &'static str) -> Self {
        LazyGauge {
            name,
            help: Some(help),
            slot: OnceLock::new(),
        }
    }

    /// Resolve the underlying registry gauge.
    pub fn get(&self) -> &'static Gauge {
        self.slot.get_or_init(|| {
            if let Some(help) = self.help {
                describe(self.name, help);
            }
            gauge(self.name)
        })
    }

    /// Set the gauge, unless `DBSCAN_OBS=off`.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::counters_enabled() {
            self.get().set(v);
        }
    }

    /// Raise the gauge to `v` if larger, unless `DBSCAN_OBS=off`.
    #[inline]
    pub fn set_max(&self, v: i64) {
        if crate::counters_enabled() {
            self.get().set_max(v);
        }
    }
}

/// A histogram handle for hot call sites; see [`LazyCounter`].
pub struct LazyHistogram {
    name: &'static str,
    help: Option<&'static str>,
    slot: OnceLock<&'static Histogram>,
}

impl LazyHistogram {
    /// A handle for the histogram named `name` (registered on first use).
    pub const fn new(name: &'static str) -> Self {
        LazyHistogram {
            name,
            help: None,
            slot: OnceLock::new(),
        }
    }

    /// Like [`LazyHistogram::new`], with `# HELP` text attached on first use.
    pub const fn with_help(name: &'static str, help: &'static str) -> Self {
        LazyHistogram {
            name,
            help: Some(help),
            slot: OnceLock::new(),
        }
    }

    /// Resolve the underlying registry histogram.
    pub fn get(&self) -> &'static Histogram {
        self.slot.get_or_init(|| {
            if let Some(help) = self.help {
                describe(self.name, help);
            }
            histogram(self.name)
        })
    }

    /// Record a duration, unless `DBSCAN_OBS=off`.
    #[inline]
    pub fn observe(&self, d: Duration) {
        if crate::counters_enabled() {
            self.get().observe(d);
        }
    }
}

/// Point-in-time view of the whole registry, sorted by metric name.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge, including callback gauges
    /// (evaluated at snapshot time).
    pub gauges: Vec<(String, i64)>,
    /// One snapshot per registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
    /// `(name, value)` for every info label.
    pub infos: Vec<(String, String)>,
    /// `(name, help)` for every metric with [`describe`]d HELP text.
    pub helps: Vec<(String, String)>,
}

impl MetricsReport {
    /// Value of the counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of the gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Snapshot of the histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Value of the info label named `name`, if registered.
    pub fn info(&self, name: &str) -> Option<&str> {
        self.infos
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// HELP text attached to the metric named `name`, if any.
    pub fn help(&self, name: &str) -> Option<&str> {
        self.helps
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Counters that advanced since `before`: `(name, delta)` for every
    /// counter whose value grew, sorted by name (registry order). Counters
    /// absent from `before` (registered in between) count from zero.
    /// Gauges and histograms are excluded — deltas of non-monotonic values
    /// are not attributable to the scoped window.
    pub fn counter_deltas(&self, before: &MetricsReport) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter_map(|(name, after)| {
                let delta = after.saturating_sub(before.counter(name).unwrap_or(0));
                (delta > 0).then(|| (name.clone(), delta))
            })
            .collect()
    }

    /// Render the report in Prometheus text exposition format (version
    /// 0.0.4): `# HELP`/`# TYPE` lines, `_bucket{le=…}`/`_sum`/`_count`
    /// series for histograms (cumulative, ending in the `+Inf` bucket that
    /// always equals `_count`), and info labels as `name{value="…"} 1`.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        // Text-exposition escaping: HELP text escapes `\` and newline; label
        // values additionally escape `"`.
        let escape_help = |s: &str| s.replace('\\', "\\\\").replace('\n', "\\n");
        let escape_label = |s: &str| {
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        };
        let mut out = String::new();
        let header = |out: &mut String, name: &str, kind: &str| {
            if let Some(help) = self.help(name) {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
            }
            let _ = writeln!(out, "# TYPE {name} {kind}");
        };
        for (name, value) in &self.counters {
            header(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            header(&mut out, name, "gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for h in &self.histograms {
            let name = &h.name;
            header(&mut out, name, "histogram");
            for (bound, cumulative) in &h.buckets {
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum_seconds);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        for (name, value) in &self.infos {
            header(&mut out, name, "gauge");
            let _ = writeln!(out, "{name}{{value=\"{}\"}} 1", escape_label(value));
        }
        out
    }
}

/// Capture the current state of every registered metric.
///
/// Registry values are cumulative for the life of the process (unlike the
/// per-session `CacheStats` views); diff two snapshots to scope a
/// measurement. Under `DBSCAN_OBS=off` nothing ever registers, so the report
/// is empty.
pub fn snapshot() -> MetricsReport {
    with_registry(|reg| {
        let mut report = MetricsReport::default();
        for (name, metric) in reg.iter() {
            match metric {
                Metric::Counter(c) => report.counters.push((name.to_string(), c.value())),
                Metric::Gauge(g) => report.gauges.push((name.to_string(), g.value())),
                Metric::GaugeFn(f) => report.gauges.push((name.to_string(), f())),
                Metric::Histogram(h) => report.histograms.push(h.snapshot(name)),
                Metric::Info(v) => report.infos.push((name.to_string(), v.clone())),
            }
        }
        let helps = helps().lock().unwrap_or_else(|e| e.into_inner());
        for (name, help) in helps.iter() {
            // Only surface help for metrics that actually registered.
            if reg.contains_key(name) {
                report.helps.push((name.to_string(), help.to_string()));
            }
        }
        report
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        static C: LazyCounter = LazyCounter::new("obs_test_counter_total");
        let before = snapshot().counter("obs_test_counter_total").unwrap_or(0);
        C.add(2);
        C.incr();
        let after = snapshot().counter("obs_test_counter_total").unwrap();
        assert_eq!(after - before, 3);
    }

    #[test]
    fn gauges_set_and_max() {
        static G: LazyGauge = LazyGauge::new("obs_test_gauge");
        G.set(7);
        G.set_max(3);
        assert_eq!(snapshot().gauge("obs_test_gauge"), Some(7));
        G.set_max(11);
        assert_eq!(snapshot().gauge("obs_test_gauge"), Some(11));
    }

    #[test]
    fn gauge_fn_evaluates_at_snapshot_time() {
        use std::sync::atomic::AtomicI64;
        static V: AtomicI64 = AtomicI64::new(0);
        register_gauge_fn("obs_test_gauge_fn", || V.load(Ordering::Relaxed));
        V.store(5, Ordering::Relaxed);
        assert_eq!(snapshot().gauge("obs_test_gauge_fn"), Some(5));
        V.store(9, Ordering::Relaxed);
        assert_eq!(snapshot().gauge("obs_test_gauge_fn"), Some(9));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        static H: LazyHistogram = LazyHistogram::new("obs_test_hist_seconds");
        H.observe(Duration::from_nanos(500)); // <= 1µs bucket
        H.observe(Duration::from_micros(5)); // <= 10µs bucket
        H.observe(Duration::from_secs(60)); // +Inf bucket
        let snap = snapshot();
        let h = snap.histogram("obs_test_hist_seconds").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], (1e-6, 1));
        assert_eq!(h.buckets[1], (1e-5, 2));
        assert_eq!(h.buckets.last().unwrap().1, 2);
        assert!((h.sum_seconds - 60.0).abs() < 0.1);
    }

    #[test]
    fn info_labels_round_trip() {
        set_info("obs_test_info", "scalar");
        assert_eq!(snapshot().info("obs_test_info"), Some("scalar"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        static C: LazyCounter = LazyCounter::new("obs_test_prom_total");
        static H: LazyHistogram = LazyHistogram::new("obs_test_prom_seconds");
        C.incr();
        H.observe(Duration::from_millis(2));
        set_info("obs_test_prom_info", "avx2+fma");
        let text = snapshot().to_prometheus();
        assert!(text.contains("# TYPE obs_test_prom_total counter"));
        assert!(text.contains("# TYPE obs_test_prom_seconds histogram"));
        assert!(text.contains("obs_test_prom_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("obs_test_prom_seconds_count 1"));
        assert!(text.contains("obs_test_prom_info{value=\"avx2+fma\"} 1"));
    }

    #[test]
    fn prometheus_help_lines_and_escaping() {
        static C: LazyCounter = LazyCounter::with_help(
            "obs_test_help_total",
            "counts things\nwith a newline and a back\\slash",
        );
        C.incr();
        set_info("obs_test_escape_info", "quo\"te\\slash\nnewline");
        let text = snapshot().to_prometheus();
        // HELP precedes TYPE, with `\` and newline escaped.
        assert!(text.contains(
            "# HELP obs_test_help_total counts things\\nwith a newline and a back\\\\slash\n\
             # TYPE obs_test_help_total counter"
        ));
        // Label values escape `\`, `"`, and newline — one physical line.
        assert!(text.contains("obs_test_escape_info{value=\"quo\\\"te\\\\slash\\nnewline\"} 1"));
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "malformed exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn histogram_inf_bucket_matches_count() {
        static H: LazyHistogram = LazyHistogram::new("obs_test_inf_seconds");
        H.observe(Duration::from_micros(3));
        H.observe(Duration::from_secs(100)); // overflow bucket
        let snap = snapshot();
        let h = snap.histogram("obs_test_inf_seconds").unwrap();
        let text = snap.to_prometheus();
        let inf_line = format!("obs_test_inf_seconds_bucket{{le=\"+Inf\"}} {}", h.count);
        let count_line = format!("obs_test_inf_seconds_count {}", h.count);
        assert!(text.contains(&inf_line));
        assert!(text.contains(&count_line));
    }

    #[test]
    fn counter_deltas_between_snapshots() {
        static A: LazyCounter = LazyCounter::new("obs_test_delta_a_total");
        static B: LazyCounter = LazyCounter::new("obs_test_delta_b_total");
        A.incr();
        let before = snapshot();
        A.add(4);
        B.get(); // registered but unchanged
        let deltas = snapshot().counter_deltas(&before);
        assert!(deltas.contains(&("obs_test_delta_a_total".to_string(), 4)));
        assert!(!deltas.iter().any(|(n, _)| n == "obs_test_delta_b_total"));
    }
}
