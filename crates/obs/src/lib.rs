//! Dependency-free observability substrate for the pardbscan workspace.
//!
//! Three pillars, all behind one process-wide switch:
//!
//! 1. **Structured span tracing** ([`Span`], [`take_trace`]): RAII guards
//!    record `(path, phase, eps, min_pts, n, duration, thread)` tuples into a
//!    bounded ring buffer, with [`phase`] constants matching the paper's
//!    Algorithm 1 so a sweep's trace shows which phase re-ran for which
//!    parameters.
//! 2. **A metrics registry** ([`LazyCounter`], [`Gauge`], [`Histogram`],
//!    [`snapshot`]): named atomic counters/gauges plus fixed-bucket duration
//!    histograms, with a typed [`MetricsReport`] and a Prometheus
//!    text-exposition exporter ([`MetricsReport::to_prometheus`]).
//! 3. **Callback gauges** ([`register_gauge_fn`]) so subsystems that keep
//!    their own counters (the worker pool) can surface them at snapshot time
//!    without double accounting.
//!
//! # The `DBSCAN_OBS` environment variable
//!
//! The mode is read **once**, on first use, exactly like
//! `DBSCAN_FORCE_SCALAR` in the distance kernels — changing the variable
//! after the first instrumented call has no effect on this process:
//!
//! | value      | counters & histograms | spans |
//! |------------|-----------------------|-------|
//! | `off`      | no                    | no    |
//! | `counters` | yes (default)         | no    |
//! | `trace`    | yes                   | yes   |
//!
//! Unknown values fall back to `counters`.
//!
//! On top of the substrate sit the attribution layers: [`OpScope`] /
//! [`ExplainReport`] (per-operation EXPLAIN built from registry + ring
//! deltas, see [`OpScope`]), the exporters in [`export`] (EXPLAIN JSON,
//! Chrome trace-event JSON, the `DBSCAN_TRACE_OUT` sink), and allocation
//! accounting in [`alloc`] (a counting global allocator behind the
//! `alloc-profile` feature).
//!
//! This crate is offline and dependency-free by design (compat-style — no
//! `tracing`, no `prometheus` crate). It contains no unsafe code except,
//! behind the `alloc-profile` feature, the `GlobalAlloc` forwarding shim in
//! [`alloc`] (the trait itself is unsafe to implement).

#![cfg_attr(not(feature = "alloc-profile"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-profile", deny(unsafe_code))]
#![deny(missing_docs)]

pub mod alloc;
pub mod export;
mod metrics;
mod scope;
mod trace;

pub use metrics::{
    describe, register_gauge_fn, set_info, snapshot, Counter, Gauge, Histogram, HistogramSnapshot,
    LazyCounter, LazyGauge, LazyHistogram, MetricsReport,
};
pub use scope::{AllocDelta, ExplainReport, OpScope, PhaseExecution};
pub use trace::{
    spans_since, take_trace, trace_dropped, trace_len, trace_seq, Span, SpanRecord, RING_CAPACITY,
};

use std::sync::atomic::{AtomicU8, Ordering};

/// What the process-wide `DBSCAN_OBS` switch is set to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// Counter updates and span recording are both no-ops.
    Off,
    /// Counters, gauges, and histograms record; spans do not. The default.
    Counters,
    /// Everything records, including spans.
    Trace,
}

impl ObsMode {
    /// Stable lower-case label (`"off"`, `"counters"`, `"trace"`).
    pub fn label(self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Counters => "counters",
            ObsMode::Trace => "trace",
        }
    }
}

const MODE_UNINIT: u8 = 0;
const MODE_OFF: u8 = 1;
const MODE_COUNTERS: u8 = 2;
const MODE_TRACE: u8 = 3;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

#[cold]
fn init_mode() -> u8 {
    let code = match std::env::var_os("DBSCAN_OBS") {
        Some(v) if v == "off" => MODE_OFF,
        Some(v) if v == "trace" => MODE_TRACE,
        _ => MODE_COUNTERS,
    };
    // A racing first call may store a different-but-identical decision; the
    // env var is only read, never written, so both racers agree.
    MODE.store(code, Ordering::Relaxed);
    if code >= MODE_COUNTERS {
        // Ring-health gauges: exhaustion shows up in the Prometheus dump
        // instead of silently truncating traces. Registered here (after the
        // mode store) so `DBSCAN_OBS=off` keeps the registry empty.
        metrics::describe(
            "dbscan_trace_buffered",
            "Spans currently buffered in the trace ring",
        );
        metrics::register_gauge_fn("dbscan_trace_buffered", || trace_len() as i64);
        metrics::describe(
            "dbscan_trace_dropped_total",
            "Spans overwritten because the trace ring was full",
        );
        metrics::register_gauge_fn("dbscan_trace_dropped_total", || trace_dropped() as i64);
    }
    if code == MODE_TRACE {
        // Best-effort DBSCAN_TRACE_OUT flush when this thread exits.
        export::arm_exit_writer();
    }
    code
}

#[inline]
fn mode_code() -> u8 {
    let code = MODE.load(Ordering::Relaxed);
    if code == MODE_UNINIT {
        init_mode()
    } else {
        code
    }
}

/// The process-wide observability mode (reads `DBSCAN_OBS` on first call,
/// then sticks for the lifetime of the process).
pub fn mode() -> ObsMode {
    match mode_code() {
        MODE_OFF => ObsMode::Off,
        MODE_TRACE => ObsMode::Trace,
        _ => ObsMode::Counters,
    }
}

/// `true` when counters, gauges, and histograms should record
/// (`DBSCAN_OBS` is `counters` or `trace`).
#[inline]
pub fn counters_enabled() -> bool {
    mode_code() >= MODE_COUNTERS
}

/// `true` when spans should record (`DBSCAN_OBS=trace`).
#[inline]
pub fn trace_enabled() -> bool {
    mode_code() == MODE_TRACE
}

/// Phase constants for [`Span`] records, matching Algorithm 1 of the paper
/// plus the maintenance steps of the streaming path.
pub mod phase {
    /// Grid partition + ε-neighbour computation (Algorithm 1, line 1).
    pub const PARTITION: &str = "partition";
    /// Core-point flagging (Algorithm 1, MarkCore).
    pub const MARK_CORE: &str = "mark_core";
    /// Cell-graph construction + core clustering (Algorithm 1, ClusterCore).
    pub const CLUSTER_CORE: &str = "cluster_core";
    /// Border-point assignment (Algorithm 1, ClusterBorder).
    pub const CLUSTER_BORDER: &str = "cluster_border";
    /// One engine/facade query (all phases plus cache lookups).
    pub const QUERY: &str = "query";
    /// One engine/facade parameter-grid sweep.
    pub const SWEEP: &str = "sweep";
    /// One streaming update batch.
    pub const APPLY: &str = "apply";
    /// Streaming step 2: re-flag core status over the dirty region.
    pub const MARK_CORE_REGION: &str = "mark_core_region";
    /// Streaming step 3: BCP re-connection of surviving cell pairs.
    pub const CONNECT_REGION: &str = "connect_region";
    /// Encoding + appending one update batch's write-ahead-log record
    /// (`dbscan-durable`).
    pub const WAL_APPEND: &str = "wal_append";
    /// Fsyncing the write-ahead log for one update batch (absent under a
    /// deferring group-commit policy).
    pub const WAL_FSYNC: &str = "wal_fsync";
    /// Opening a durable store: snapshot load + WAL replay.
    pub const RECOVERY: &str = "recovery";
    /// Publishing one immutable generation of a concurrent session
    /// (`dbscan::ConcurrentSession`): live-set snapshot + label resolve.
    pub const PUBLISH: &str = "publish";
    /// Serving one HTTP request (`dbscan-serve`), parse to flush.
    pub const REQUEST: &str = "request";
    /// Shard-local work of a sharded clustering run (`dbscan-shard`):
    /// per-shard MarkCore and intra-shard cell-graph BCP.
    pub const SHARD_LOCAL: &str = "shard_local";
    /// The merge phase of a sharded clustering run: boundary-edge BCP at the
    /// coordinator plus component stitching into global labels.
    pub const SHARD_MERGE: &str = "shard_merge";
}

/// A monotonically assigned per-thread id, used in span records. Stable for
/// the life of the thread; ids are never reused within a process.
pub fn thread_id() -> u64 {
    use std::cell::Cell;
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: Cell<u64> = const { Cell::new(0) };
    }
    ID.with(|id| {
        let v = id.get();
        if v != 0 {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed);
            id.set(v);
            v
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_label_round_trip() {
        assert_eq!(ObsMode::Off.label(), "off");
        assert_eq!(ObsMode::Counters.label(), "counters");
        assert_eq!(ObsMode::Trace.label(), "trace");
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let here = thread_id();
        assert_eq!(here, thread_id());
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(here, other);
    }
}
