//! Allocation accounting: a counting global allocator behind the
//! `alloc-profile` feature.
//!
//! The workspace makes "zero allocations on the steady-state hot path"
//! claims (BCP scratch reuse, flat CSR adjacency). This module turns those
//! claims into live metrics: build with `--features alloc-profile`, install
//! `CountingAllocator` as the `#[global_allocator]` in the *binary* under
//! test, and every [`super::scope::ExplainReport`] carries the allocation
//! delta of its operation.
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: obs::alloc::CountingAllocator = obs::alloc::CountingAllocator;
//! ```
//!
//! Caveats (also in the README):
//!
//! * The counters are **process-wide**, not per-thread or per-scope-owner:
//!   concurrent threads' allocations land in the same window.
//! * Counting costs two relaxed atomic adds per malloc/free — measurable on
//!   allocation-heavy code, which is why the feature is off by default and
//!   never enabled for benchmark runs.
//! * Without the feature (or without installing the allocator), deltas
//!   report as "not profiled" ([`AllocStats`] stays zero).

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static BYTES_DEALLOCATED: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide allocation counters, as sampled by [`stats`].
/// All-zero unless `CountingAllocator` is installed as the global
/// allocator (which requires the `alloc-profile` feature).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Calls to `alloc`/`alloc_zeroed`, plus growing `realloc`s.
    pub allocations: u64,
    /// Calls to `dealloc`.
    pub deallocations: u64,
    /// Total bytes requested by allocations.
    pub bytes_allocated: u64,
    /// Total bytes released by deallocations.
    pub bytes_deallocated: u64,
}

impl AllocStats {
    /// Component-wise `self - earlier` (saturating).
    pub fn since(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            deallocations: self.deallocations.saturating_sub(earlier.deallocations),
            bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
            bytes_deallocated: self
                .bytes_deallocated
                .saturating_sub(earlier.bytes_deallocated),
        }
    }
}

/// Sample the cumulative allocation counters. Cheap (four relaxed loads);
/// all-zero when no `CountingAllocator` is installed.
pub fn stats() -> AllocStats {
    AllocStats {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        deallocations: DEALLOCATIONS.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
        bytes_deallocated: BYTES_DEALLOCATED.load(Ordering::Relaxed),
    }
}

/// `true` once the counting allocator has observed at least one allocation —
/// i.e. it is actually installed in this process. (Any Rust program
/// allocates long before user code runs, so after `main` starts this is
/// equivalent to "installed".)
pub fn profiling_active() -> bool {
    ALLOCATIONS.load(Ordering::Relaxed) > 0
}

#[cfg(feature = "alloc-profile")]
mod counting {
    use super::{ALLOCATIONS, BYTES_ALLOCATED, BYTES_DEALLOCATED, DEALLOCATIONS};
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::Ordering;

    /// A [`GlobalAlloc`] that forwards to [`System`] and counts every
    /// allocation, deallocation, and their byte totals. Install it with
    /// `#[global_allocator]` in the binary under test.
    pub struct CountingAllocator;

    // The only unsafe in the obs crate: pure forwarding to the system
    // allocator, with the caller's `GlobalAlloc` contract passed through
    // unchanged. Counting happens outside the unsafe operations.
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc(layout);
            if !p.is_null() {
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = System.alloc_zeroed(layout);
            if !p.is_null() {
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            BYTES_DEALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.dealloc(ptr, layout);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = System.realloc(ptr, layout, new_size);
            if !p.is_null() {
                // A realloc is one free plus one allocation of the new size.
                ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
                BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
                BYTES_DEALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
            }
            p
        }
    }
}

#[cfg(feature = "alloc-profile")]
pub use counting::CountingAllocator;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_saturates_and_subtracts() {
        let a = AllocStats {
            allocations: 10,
            deallocations: 4,
            bytes_allocated: 100,
            bytes_deallocated: 40,
        };
        let b = AllocStats {
            allocations: 3,
            deallocations: 6,
            bytes_allocated: 30,
            bytes_deallocated: 60,
        };
        let d = a.since(&b);
        assert_eq!(d.allocations, 7);
        assert_eq!(d.deallocations, 0);
        assert_eq!(d.bytes_allocated, 70);
        assert_eq!(d.bytes_deallocated, 0);
    }
}
