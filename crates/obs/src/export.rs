//! Exporters: [`ExplainReport`] → JSON, span ring → Chrome trace-event
//! JSON (loadable in Perfetto / `chrome://tracing`), and the
//! `DBSCAN_TRACE_OUT` file sink.
//!
//! The serializers are hand-rolled (this crate is dependency-free); the
//! trace-event output follows the Trace Event Format's complete-event
//! (`"ph": "X"`) shape: microsecond `ts`/`dur`, one `pid`, and one `tid`
//! lane per recording thread.

use crate::scope::ExplainReport;
use crate::trace::SpanRecord;
use std::fmt::Write as _;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a finite float as JSON, mapping NaN/∞ (no JSON spelling) to null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Serialize an [`ExplainReport`] as a JSON object (stable field names,
/// durations in seconds, non-finite floats as `null`).
pub fn explain_json(report: &ExplainReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"op\": \"{}\", \"variant\": \"{}\", \"eps\": {}, \"min_pts\": {}, \"n\": {}, \
         \"wall_s\": {}, \"cells_visited\": {}, \"num_core_points\": {},",
        json_escape(report.op),
        json_escape(&report.variant),
        json_f64(report.eps),
        report.min_pts,
        report.n,
        json_f64(report.wall.as_secs_f64()),
        report.cells_visited,
        report.num_core_points,
    );
    out.push_str(" \"phases\": [");
    for (i, p) in report.phases.iter().enumerate() {
        let _ = write!(
            out,
            "{}{{\"phase\": \"{}\", \"runs\": {}, \"skips\": {}, \"skipped_by_generation\": {}, \
             \"duration_s\": {}}}",
            if i > 0 { ", " } else { "" },
            json_escape(p.phase),
            p.runs,
            p.skips,
            p.skipped_by_generation
                .map_or("null".to_string(), |g| g.to_string()),
            json_f64(p.duration.as_secs_f64()),
        );
    }
    out.push_str("], \"counter_deltas\": {");
    for (i, (name, delta)) in report.counter_deltas.iter().enumerate() {
        let _ = write!(
            out,
            "{}\"{}\": {}",
            if i > 0 { ", " } else { "" },
            json_escape(name),
            delta
        );
    }
    let _ = write!(
        out,
        "}}, \"pool_busy_s\": {}, \"threads\": {}, \"parallel_efficiency\": {}, \
         \"alloc\": {{\"profiled\": {}, \"allocations\": {}, \"deallocations\": {}, \
         \"bytes_allocated\": {}}}, \"spans\": {}}}",
        json_f64(report.pool_busy.as_secs_f64()),
        report.threads,
        json_f64(report.parallel_efficiency),
        report.alloc.profiled,
        report.alloc.allocations,
        report.alloc.deallocations,
        report.alloc.bytes_allocated,
        report.spans.len(),
    );
    out
}

/// Serialize spans as Chrome trace-event JSON: one complete event
/// (`"ph": "X"`) per span with microsecond `ts` (offset from the process
/// trace epoch) and `dur`, `pid` 1, and the recording thread's id as `tid`
/// — so Perfetto renders one lane per thread. Thread-name metadata events
/// label the lanes. Events are sorted by start time.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.start, s.seq));

    let mut tids: Vec<u64> = sorted.iter().map(|s| s.thread).collect();
    tids.sort_unstable();
    tids.dedup();

    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    for tid in &tids {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"name\": \"obs thread {tid}\"}}}}"
        );
    }
    for s in &sorted {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let ts_us = s.start.as_secs_f64() * 1e6;
        let dur_us = s.duration.as_secs_f64() * 1e6;
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
             \"pid\": 1, \"tid\": {}, \"args\": {{\"seq\": {}, \"n\": {}, \"min_pts\": {}",
            json_escape(s.phase),
            json_escape(s.path),
            json_f64(ts_us),
            json_f64(dur_us),
            s.thread,
            s.seq,
            s.n,
            s.min_pts,
        );
        if s.eps.is_finite() {
            let _ = write!(out, ", \"eps\": {}", json_f64(s.eps));
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// The path `DBSCAN_TRACE_OUT` points at, if set and non-empty.
pub fn trace_out_path() -> Option<std::path::PathBuf> {
    std::env::var_os("DBSCAN_TRACE_OUT")
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}

/// Drain the span ring and write it as Chrome trace-event JSON to the
/// `DBSCAN_TRACE_OUT` path. Returns `None` when the variable is unset (and
/// leaves the ring untouched), otherwise the write result.
///
/// Called automatically when a tracing thread exits (best-effort — the
/// thread-local exit hook only covers threads that recorded spans, and
/// `std::process::exit` skips it); long-running binaries should call this
/// explicitly at shutdown.
pub fn write_trace_out() -> Option<std::io::Result<std::path::PathBuf>> {
    let path = trace_out_path()?;
    let spans = crate::take_trace();
    Some(std::fs::write(&path, chrome_trace(&spans)).map(|()| path))
}

/// Arm the best-effort exit writer on the calling thread: when the thread
/// exits, the ring is flushed to `DBSCAN_TRACE_OUT` (if set). Idempotent.
pub(crate) fn arm_exit_writer() {
    struct ExitWriter;
    impl Drop for ExitWriter {
        fn drop(&mut self) {
            let _ = write_trace_out();
        }
    }
    thread_local! {
        static GUARD: ExitWriter = const { ExitWriter };
    }
    GUARD.with(|_| {});
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn span(seq: u64, start_us: u64, thread: u64) -> SpanRecord {
        SpanRecord {
            path: "engine",
            phase: crate::phase::QUERY,
            eps: 0.5,
            min_pts: 10,
            n: 1000,
            start: Duration::from_micros(start_us),
            duration: Duration::from_micros(25),
            thread,
            seq,
        }
    }

    #[test]
    fn chrome_trace_sorts_and_lanes() {
        let spans = vec![span(2, 300, 2), span(1, 100, 1)];
        let text = chrome_trace(&spans);
        // Sorted by start: seq 1 (ts 100) precedes seq 2 (ts 300).
        let a = text.find("\"ts\": 100").unwrap();
        let b = text.find("\"ts\": 300").unwrap();
        assert!(a < b);
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"ph\": \"M\""));
        assert!(text.contains("\"tid\": 1"));
        assert!(text.contains("\"tid\": 2"));
        assert!(text.contains("\"eps\": 0.5"));
    }

    #[test]
    fn explain_json_is_balanced() {
        let report = crate::OpScope::begin("query").finish();
        let text = explain_json(&report);
        assert_eq!(
            text.matches('{').count(),
            text.matches('}').count(),
            "unbalanced braces in {text}"
        );
        assert!(text.contains("\"op\": \"query\""));
        assert!(text.contains("\"eps\": null"));
    }
}
