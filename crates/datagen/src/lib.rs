//! Synthetic dataset generators for the parallel DBSCAN evaluation.
//!
//! The paper's evaluation (§7) uses two families of synthetic data produced
//! by Gan & Tao's generator — the *seed spreader* with similar-density
//! (`SS-simden`) and variable-density (`SS-varden`) clusters — plus a
//! `UniformFill` dataset, and five real datasets (Household, GeoLife,
//! Cosmo50, OpenStreetMap, TeraClickLog). The real datasets are not
//! redistributable here, so this crate provides:
//!
//! * [`mod@seed_spreader`] — the seed-spreader random-walk generator with
//!   similar- and variable-density presets,
//! * [`uniform`] — UniformFill (uniform points in a hypercube of side √n),
//! * [`standins`] — synthetic stand-ins reproducing the two structural
//!   properties of the real datasets that the paper's analysis depends on:
//!   the extreme spatial skew of GeoLife (which makes BCP-based cell-graph
//!   queries expensive and the bucketing optimization valuable) and the
//!   all-points-in-one-cell degeneracy of TeraClickLog at the published
//!   parameters,
//! * [`io`] — tiny CSV read/write helpers used by the examples.
//!
//! The substitutions are documented in DESIGN.md §4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod seed_spreader;
pub mod standins;
pub mod uniform;

pub use seed_spreader::{seed_spreader, SeedSpreaderConfig};
pub use standins::{single_cell_like, skewed_geolife_like};
pub use uniform::uniform_fill;
