//! The `UniformFill` dataset: points distributed uniformly at random inside
//! a bounding hypergrid. The paper uses side length √n; [`uniform_fill`]
//! takes the side length explicitly and [`uniform_fill_sqrt_n`] applies the
//! paper's convention.

use geom::Point;
use rand::prelude::*;
use rayon::prelude::*;

/// `n` points uniform in `[0, extent]^D`, deterministic in `seed`.
pub fn uniform_fill<const D: usize>(n: usize, extent: f64, seed: u64) -> Vec<Point<D>> {
    // Chunked so generation is parallel yet deterministic: each chunk derives
    // its own RNG from (seed, chunk index).
    const CHUNK: usize = 8192;
    let nchunks = n.div_ceil(CHUNK);
    (0..nchunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let mut rng = StdRng::seed_from_u64(seed ^ (chunk as u64).wrapping_mul(0x9E37_79B9));
            let count = CHUNK.min(n - chunk * CHUNK);
            (0..count)
                .map(|_| {
                    let mut coords = [0.0; D];
                    for c in coords.iter_mut() {
                        *c = rng.gen_range(0.0..extent);
                    }
                    Point::new(coords)
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// The paper's `UniformFill` convention: side length √n.
pub fn uniform_fill_sqrt_n<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
    uniform_fill(n, (n as f64).sqrt().max(1.0), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_count_and_bounds() {
        let pts = uniform_fill::<3>(10_000, 50.0, 3);
        assert_eq!(pts.len(), 10_000);
        assert!(pts
            .iter()
            .all(|p| (0..3).all(|i| p.coords[i] >= 0.0 && p.coords[i] < 50.0)));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            uniform_fill::<2>(5000, 10.0, 1),
            uniform_fill::<2>(5000, 10.0, 1)
        );
        assert_ne!(
            uniform_fill::<2>(5000, 10.0, 1),
            uniform_fill::<2>(5000, 10.0, 2)
        );
    }

    #[test]
    fn sqrt_n_extent() {
        let pts = uniform_fill_sqrt_n::<2>(400, 9);
        assert_eq!(pts.len(), 400);
        assert!(pts.iter().all(|p| p.x() < 20.0 && p.y() < 20.0));
    }

    #[test]
    fn roughly_uniform_occupancy() {
        // Split the square into 4 quadrants; each should hold ~25% of points.
        let n = 40_000;
        let pts = uniform_fill::<2>(n, 100.0, 5);
        let mut counts = [0usize; 4];
        for p in &pts {
            let q = (p.x() >= 50.0) as usize + 2 * (p.y() >= 50.0) as usize;
            counts[q] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.02, "quadrant fraction {frac}");
        }
    }

    #[test]
    fn zero_points() {
        assert!(uniform_fill::<2>(0, 10.0, 0).is_empty());
    }
}
