//! The seed-spreader generator of Gan & Tao, used for the `SS-simden` and
//! `SS-varden` datasets in the paper's evaluation.
//!
//! A "spreader" performs a random walk in the domain `[0, extent]^D`: it
//! repeatedly emits points uniformly at random inside a small vicinity ball
//! around its current location and then takes a small step; with a restart
//! probability (and after emitting a fixed number of points) it teleports to
//! a fresh uniformly random location, which starts a new cluster. A small
//! fraction of points is replaced by uniform noise. In the variable-density
//! variant the vicinity radius changes by an order of magnitude across
//! restarts, so clusters have very different densities.

use geom::Point;
use rand::prelude::*;

/// Configuration of the seed-spreader generator.
#[derive(Debug, Clone)]
pub struct SeedSpreaderConfig {
    /// Number of points to generate.
    pub n: usize,
    /// Side length of the bounding hypercube (the paper uses 10^5 with
    /// integer-rounded coordinates; we keep full `f64` coordinates).
    pub extent: f64,
    /// Number of points emitted before the spreader teleports and starts a
    /// new cluster.
    pub points_per_cluster: usize,
    /// Probability of an early teleport after each emitted point.
    pub restart_probability: f64,
    /// Radius of the vicinity ball points are emitted in.
    pub vicinity: f64,
    /// Step length of the random walk between emissions.
    pub step: f64,
    /// Fraction of points replaced by uniform noise.
    pub noise_fraction: f64,
    /// If `true`, the vicinity radius is rescaled by a random factor in
    /// [0.1, 10] at every restart (the `varden` variant).
    pub variable_density: bool,
    /// RNG seed (generation is deterministic given the configuration).
    pub seed: u64,
}

impl SeedSpreaderConfig {
    /// The similar-density preset (`SS-simden`) scaled to `n` points.
    pub fn simden(n: usize, seed: u64) -> Self {
        SeedSpreaderConfig {
            n,
            extent: 100_000.0,
            points_per_cluster: (n / 10).max(100),
            restart_probability: 10.0 / n.max(1) as f64,
            vicinity: 100.0,
            step: 50.0,
            noise_fraction: 1e-4,
            variable_density: false,
            seed,
        }
    }

    /// The variable-density preset (`SS-varden`) scaled to `n` points.
    pub fn varden(n: usize, seed: u64) -> Self {
        SeedSpreaderConfig {
            variable_density: true,
            ..Self::simden(n, seed)
        }
    }
}

/// Generates a seed-spreader dataset in `D` dimensions.
pub fn seed_spreader<const D: usize>(config: &SeedSpreaderConfig) -> Vec<Point<D>> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.n);
    let mut position = random_position::<D>(&mut rng, config.extent);
    let mut vicinity = config.vicinity;
    let mut emitted_in_cluster = 0usize;

    while out.len() < config.n {
        // Teleport: new cluster location (and, for varden, a new density).
        let restart = emitted_in_cluster >= config.points_per_cluster
            || (emitted_in_cluster > 0 && rng.gen_bool(config.restart_probability.clamp(0.0, 1.0)));
        if restart {
            position = random_position::<D>(&mut rng, config.extent);
            emitted_in_cluster = 0;
            if config.variable_density {
                vicinity = config.vicinity * rng.gen_range(0.1..10.0);
            }
        }

        if rng.gen_bool(config.noise_fraction.clamp(0.0, 1.0)) {
            out.push(Point::new(random_position::<D>(&mut rng, config.extent)));
        } else {
            let mut coords = [0.0; D];
            for (i, c) in coords.iter_mut().enumerate() {
                *c = (position[i] + rng.gen_range(-vicinity..vicinity)).clamp(0.0, config.extent);
            }
            out.push(Point::new(coords));
            // Random-walk step.
            for p in position.iter_mut() {
                *p = (*p + rng.gen_range(-config.step..config.step)).clamp(0.0, config.extent);
            }
            emitted_in_cluster += 1;
        }
    }
    out
}

fn random_position<const D: usize>(rng: &mut StdRng, extent: f64) -> [f64; D] {
    let mut coords = [0.0; D];
    for c in coords.iter_mut() {
        *c = rng.gen_range(0.0..extent);
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_points_in_bounds() {
        let cfg = SeedSpreaderConfig::simden(5000, 1);
        let pts = seed_spreader::<3>(&cfg);
        assert_eq!(pts.len(), 5000);
        for p in &pts {
            for i in 0..3 {
                assert!(p.coords[i] >= 0.0 && p.coords[i] <= cfg.extent);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = SeedSpreaderConfig::varden(2000, 42);
        let a = seed_spreader::<2>(&cfg);
        let b = seed_spreader::<2>(&cfg);
        assert_eq!(a, b);
        let c = seed_spreader::<2>(&SeedSpreaderConfig::varden(2000, 43));
        assert_ne!(a, c);
    }

    #[test]
    fn points_are_clustered_not_uniform() {
        // The average nearest-neighbour distance of a clustered set is much
        // smaller than that of a uniform set of the same size and extent.
        let cfg = SeedSpreaderConfig::simden(2000, 7);
        let clustered = seed_spreader::<2>(&cfg);
        let uniform = crate::uniform::uniform_fill::<2>(2000, cfg.extent, 7);
        let avg_nn = |pts: &[Point<2>]| -> f64 {
            let sample: Vec<&Point<2>> = pts.iter().step_by(20).collect();
            sample
                .iter()
                .map(|p| {
                    pts.iter()
                        .filter(|q| *q != *p)
                        .map(|q| p.dist_sq(q))
                        .fold(f64::INFINITY, f64::min)
                        .sqrt()
                })
                .sum::<f64>()
                / sample.len() as f64
        };
        assert!(avg_nn(&clustered) < 0.5 * avg_nn(&uniform));
    }

    #[test]
    fn varden_produces_varied_local_density() {
        let cfg = SeedSpreaderConfig::varden(4000, 11);
        let pts = seed_spreader::<2>(&cfg);
        assert_eq!(pts.len(), 4000);
        // Sanity: the dataset is still in bounds and deterministic; detailed
        // density assertions are statistical and covered by the clustering
        // integration tests.
        assert!(pts.iter().all(|p| p.x() >= 0.0 && p.x() <= cfg.extent));
    }

    #[test]
    fn tiny_configurations_work() {
        let cfg = SeedSpreaderConfig::simden(1, 0);
        assert_eq!(seed_spreader::<5>(&cfg).len(), 1);
        let cfg0 = SeedSpreaderConfig::simden(0, 0);
        assert!(seed_spreader::<2>(&cfg0).is_empty());
    }
}
