//! Synthetic stand-ins for the paper's real-world datasets.
//!
//! The paper's large-dataset experiments depend on two structural properties
//! of the real data rather than on the data itself:
//!
//! * **GeoLife** is extremely skewed: most of the 24.9M GPS points fall into
//!   a tiny geographic area, so a few grid cells are enormous, BCP-based
//!   connectivity queries on them become quadratic-cost hot spots, and the
//!   bucketing optimization pays off (paper §7.2, Figure 6(j)).
//!   [`skewed_geolife_like`] reproduces that property: a configurable
//!   fraction of the points is packed into a region a few ε wide while the
//!   rest spreads uniformly over the full domain.
//! * **TeraClickLog** at the published parameters (ε = 1500, minPts = 100)
//!   puts *all* points into a single cell, so every point is core and there
//!   is exactly one cluster (paper §7.2, Table 2 discussion).
//!   [`single_cell_like`] reproduces that degeneracy for any dimension.

use geom::Point;
use rand::prelude::*;

/// A heavily skewed dataset: `hot_fraction` of the `n` points fall inside a
/// ball of radius `hot_radius` at the domain centre, the rest are uniform in
/// `[0, extent]^D`.
pub fn skewed_geolife_like<const D: usize>(
    n: usize,
    extent: f64,
    hot_fraction: f64,
    hot_radius: f64,
    seed: u64,
) -> Vec<Point<D>> {
    assert!((0.0..=1.0).contains(&hot_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let center = extent / 2.0;
    for _ in 0..n {
        let mut coords = [0.0; D];
        if rng.gen_bool(hot_fraction) {
            for c in coords.iter_mut() {
                *c = (center + rng.gen_range(-hot_radius..hot_radius)).clamp(0.0, extent);
            }
        } else {
            for c in coords.iter_mut() {
                *c = rng.gen_range(0.0..extent);
            }
        }
        out.push(Point::new(coords));
    }
    out
}

/// A dataset whose points all lie within a single DBSCAN grid cell for the
/// given `eps` (cell side ε/√D): every point is within ε of every other, so
/// with any minPts ≤ n all points are core and form one cluster.
pub fn single_cell_like<const D: usize>(n: usize, eps: f64, seed: u64) -> Vec<Point<D>> {
    let side = eps / (D as f64).sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut coords = [0.0; D];
            for c in coords.iter_mut() {
                // Strictly inside one cell anchored at the origin.
                *c = rng.gen_range(0.0..side * 0.999);
            }
            Point::new(coords)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_dataset_is_actually_skewed() {
        let n = 20_000;
        let extent = 1000.0;
        let pts = skewed_geolife_like::<2>(n, extent, 0.8, 5.0, 1);
        assert_eq!(pts.len(), n);
        let center = extent / 2.0;
        let hot = pts
            .iter()
            .filter(|p| (p.x() - center).abs() <= 5.0 && (p.y() - center).abs() <= 5.0)
            .count();
        assert!(
            hot as f64 > 0.75 * n as f64,
            "only {hot} points in the hot spot"
        );
    }

    #[test]
    fn single_cell_points_are_pairwise_within_eps() {
        let eps = 2.0;
        let pts = single_cell_like::<3>(200, eps, 3);
        for (i, p) in pts.iter().enumerate() {
            for q in &pts[i + 1..] {
                assert!(p.within(q, eps));
            }
        }
    }

    #[test]
    fn deterministic_and_bounded() {
        let a = skewed_geolife_like::<3>(1000, 100.0, 0.9, 1.0, 7);
        let b = skewed_geolife_like::<3>(1000, 100.0, 0.9, 1.0, 7);
        assert_eq!(a, b);
        assert!(a
            .iter()
            .all(|p| (0..3).all(|i| p.coords[i] >= 0.0 && p.coords[i] <= 100.0)));
    }

    #[test]
    fn degenerate_sizes() {
        assert!(skewed_geolife_like::<2>(0, 10.0, 0.5, 1.0, 0).is_empty());
        assert_eq!(single_cell_like::<2>(1, 1.0, 0).len(), 1);
    }
}
