//! Minimal CSV input/output for point sets, used by the runnable examples to
//! persist generated datasets and clustering results.

use geom::Point;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Writes `points` to `path`, one comma-separated row per point.
pub fn write_csv<const D: usize>(path: &Path, points: &[Point<D>]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for p in points {
        let row: Vec<String> = p.coords.iter().map(|c| format!("{c}")).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()
}

/// Reads points from a CSV file previously written by [`write_csv`] (or any
/// headerless file with at least `D` numeric columns; extra columns are
/// ignored). Rows that fail to parse are reported as errors.
pub fn read_csv<const D: usize>(path: &Path) -> io::Result<Vec<Point<D>>> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < D {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected {} columns, found {}",
                    lineno + 1,
                    D,
                    fields.len()
                ),
            ));
        }
        let mut coords = [0.0; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = fields[i].trim().parse::<f64>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: column {}: {}", lineno + 1, i + 1, e),
                )
            })?;
        }
        out.push(Point::new(coords));
    }
    Ok(out)
}

/// Writes per-point cluster labels (one integer per row, −1 for noise) next
/// to the points, producing rows of the form `x,y,...,label`.
pub fn write_labeled_csv<const D: usize>(
    path: &Path,
    points: &[Point<D>],
    labels: &[i64],
) -> io::Result<()> {
    assert_eq!(points.len(), labels.len());
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for (p, l) in points.iter().zip(labels) {
        let row: Vec<String> = p.coords.iter().map(|c| format!("{c}")).collect();
        writeln!(w, "{},{}", row.join(","), l)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_points() {
        let dir = std::env::temp_dir();
        let path = dir.join("pardbscan_io_test_roundtrip.csv");
        let pts = vec![Point::new([1.5, -2.25, 3.0]), Point::new([0.0, 0.125, 1e6])];
        write_csv(&path, &pts).unwrap();
        let back: Vec<Point<3>> = read_csv(&path).unwrap();
        assert_eq!(back, pts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_rows_are_rejected() {
        let dir = std::env::temp_dir();
        let path = dir.join("pardbscan_io_test_malformed.csv");
        std::fs::write(&path, "1.0,2.0\n3.0,not_a_number\n").unwrap();
        assert!(read_csv::<2>(&path).is_err());
        std::fs::write(&path, "1.0\n").unwrap();
        assert!(read_csv::<2>(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn labeled_output_has_one_row_per_point() {
        let dir = std::env::temp_dir();
        let path = dir.join("pardbscan_io_test_labeled.csv");
        let pts = vec![Point::new([0.0, 1.0]), Point::new([2.0, 3.0])];
        write_labeled_csv(&path, &pts, &[0, -1]).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 2);
        assert!(contents.lines().next().unwrap().ends_with(",0"));
        std::fs::remove_file(&path).ok();
    }
}
