//! A minimal JSON reader shared by the bench gates and the service.
//!
//! The workspace *emits* JSON by string formatting (no serde in the
//! container); this crate is the matching *reader* used by the
//! `check_schema` CI gate, the `trend_append` helper, and the
//! `dbscan-serve` request parser. It supports the full JSON value grammar
//! those emitters and clients produce: objects, arrays, strings with
//! escapes, `f64` numbers, booleans and `null`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (read as `f64`, which covers every value the bench
    /// emitters write).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Key order is not preserved (schema checks don't need it).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Short type name used in validation error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deepest accepted array/object nesting. The parser is recursive-descent
/// and `dbscan-serve` feeds it untrusted request bodies, so the recursion
/// depth must be bounded well below the thread stack or a few KB of `[`
/// characters would abort the process.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document (rejecting trailing garbage).
///
/// Arrays/objects nested deeper than 128 levels are rejected with an
/// error rather than recursing without bound.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of document".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole scalar value.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            other => return Err(format!("expected `,` or `]`, got {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse(r#"{"a": 1.5, "b": [true, null, "x\ny"], "c": {"d": -2e3}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_f64(), Some(1.5));
        let b = doc.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0].as_bool(), Some(true));
        assert_eq!(b[1], Value::Null);
        assert_eq!(b[2].as_str(), Some("x\ny"));
        assert_eq!(doc.get("c").unwrap().get("d").unwrap().as_f64(), Some(-2e3));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn rejects_deep_nesting_without_overflowing_the_stack() {
        // An attacker-sized document: tens of KB of '[' must come back as
        // a parse error, not a stack-overflow abort.
        let hostile = "[".repeat(64 * 1024);
        let err = parse(&hostile).unwrap_err();
        assert!(err.contains("nesting"), "unexpected error: {err}");
        let hostile_objects = "{\"k\":".repeat(64 * 1024);
        assert!(parse(&hostile_objects).is_err());

        // Nesting at the limit still parses.
        let deep = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&deep).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(too_deep.len() < 1024); // small enough that only the limit can reject it
        assert!(parse(&too_deep).is_err());
    }

    #[test]
    fn round_trips_the_emitters_own_output() {
        // The exact shape `hotpath --smoke` writes.
        let doc = parse(
            "{\n  \"figure\": \"hotpath\",\n  \"smoke\": true,\n  \"machine_cores\": 1,\n  \
             \"series\": [\n    {\"dataset\": \"2D-SS-simden\", \"n\": 2000, \"eps\": 1000, \
             \"min_pts\": 10, \"partition_s\": 0.001, \"mark_core_s\": 0.002, \
             \"cell_graph_s\": 0.003, \"dbscan_s\": 0.004}\n  ]\n}\n",
        )
        .unwrap();
        assert_eq!(doc.get("figure").unwrap().as_str(), Some("hotpath"));
        assert_eq!(doc.get("series").unwrap().as_array().unwrap().len(), 1);
    }
}
