//! Integration tests for the Gan–Tao ρ-approximate DBSCAN guarantee.
//!
//! The approximate algorithm may return any clustering consistent with the
//! relaxed connectivity rule (§2 of the paper): core points within ε must be
//! connected, core points farther than ε(1+ρ) must not be, and anything in
//! between is free. Concretely that means the partition of the core points
//! must be *sandwiched*: every exact-DBSCAN(ε) cluster is contained in one
//! approximate cluster, and every approximate cluster is contained in one
//! exact-DBSCAN(ε(1+ρ)) cluster. Core flags are not relaxed at all.

use datagen::{seed_spreader, uniform_fill, SeedSpreaderConfig};
use geom::Point;
use pardbscan::{Clustering, Dbscan, MarkCoreMethod};
use std::collections::HashMap;

/// Checks that, restricted to core points, the clusters of `fine` refine the
/// clusters of `coarse`: any two core points together in a `fine` cluster are
/// together in a `coarse` cluster.
fn core_partition_refines(fine: &Clustering, coarse: &Clustering) -> bool {
    let mut map: HashMap<usize, usize> = HashMap::new();
    for i in 0..fine.len() {
        if !fine.is_core(i) {
            continue;
        }
        assert!(coarse.is_core(i), "core flags must be identical");
        let f = fine.clusters_of(i)[0];
        let c = coarse.clusters_of(i)[0];
        match map.get(&f) {
            None => {
                map.insert(f, c);
            }
            Some(&existing) => {
                if existing != c {
                    return false;
                }
            }
        }
    }
    true
}

fn check_sandwich<const D: usize>(points: &[Point<D>], eps: f64, min_pts: usize, rho: f64) {
    let exact_inner = Dbscan::exact(points, eps, min_pts).run().unwrap();
    let exact_outer = Dbscan::exact(points, eps * (1.0 + rho), min_pts)
        .run()
        .unwrap();
    for mark in [MarkCoreMethod::Scan, MarkCoreMethod::QuadTree] {
        let approx = Dbscan::exact(points, eps, min_pts)
            .mark_core(mark)
            .approximate(rho)
            .run()
            .unwrap();
        // Core determination is exact in approximate DBSCAN.
        assert_eq!(approx.core_flags(), exact_inner.core_flags(), "{mark:?}");
        // exact(ε) refines approx refines … well, approx must merge whole
        // exact(ε) clusters, i.e. exact(ε) refines approx.
        assert!(
            core_partition_refines(&exact_inner, &approx),
            "{mark:?}: some exact(eps) cluster was split by the approximate run"
        );
        // And approx must not merge anything exact(ε(1+ρ)) keeps apart.
        // Note: exact(ε(1+ρ)) has *more* core points (larger radius), so we
        // compare only on the inner core set, which is a subset.
        let mut map: HashMap<usize, usize> = HashMap::new();
        for i in 0..approx.len() {
            if !approx.is_core(i) {
                continue;
            }
            let a = approx.clusters_of(i)[0];
            let o = exact_outer.clusters_of(i)[0];
            match map.get(&a) {
                None => {
                    map.insert(a, o);
                }
                Some(&existing) => assert_eq!(
                    existing, o,
                    "{mark:?}: approximate run merged clusters that exact(eps(1+rho)) separates"
                ),
            }
        }
        // Every clustered point (core or border) must be within ε of a core
        // point — border handling is not relaxed.
        for i in 0..approx.len() {
            if approx.is_core(i) || approx.is_noise(i) {
                continue;
            }
            let near_core =
                (0..points.len()).any(|j| approx.is_core(j) && points[i].within(&points[j], eps));
            assert!(
                near_core,
                "{mark:?}: border point {i} has no core point within eps"
            );
        }
    }
}

#[test]
fn sandwich_property_on_uniform_3d() {
    let pts = uniform_fill::<3>(2_000, 30.0, 21);
    check_sandwich(&pts, 1.5, 10, 0.1);
    check_sandwich(&pts, 2.0, 20, 0.01);
}

#[test]
fn sandwich_property_on_seed_spreader_5d() {
    let cfg = SeedSpreaderConfig {
        extent: 2_000.0,
        vicinity: 30.0,
        step: 15.0,
        ..SeedSpreaderConfig::varden(3_000, 33)
    };
    let pts = seed_spreader::<5>(&cfg);
    check_sandwich(&pts, 80.0, 10, 0.05);
}

#[test]
fn sandwich_property_on_clustered_2d() {
    let cfg = SeedSpreaderConfig {
        extent: 1_000.0,
        vicinity: 15.0,
        step: 8.0,
        ..SeedSpreaderConfig::simden(3_000, 37)
    };
    let pts = seed_spreader::<2>(&cfg);
    check_sandwich(&pts, 20.0, 15, 0.2);
}

#[test]
fn tiny_rho_matches_exact_clustering_exactly_here() {
    // With a tiny rho on well-separated clusters the approximate result
    // coincides with the exact one (clusters are far apart relative to
    // eps*rho).
    let mut pts = Vec::new();
    for i in 0..200 {
        pts.push(geom::Point2::new([
            (i % 20) as f64 * 0.3,
            (i / 20) as f64 * 0.3,
        ]));
        pts.push(geom::Point2::new([
            100.0 + (i % 20) as f64 * 0.3,
            100.0 + (i / 20) as f64 * 0.3,
        ]));
    }
    let exact = Dbscan::exact(&pts, 0.5, 5).run().unwrap();
    let approx = Dbscan::exact(&pts, 0.5, 5).approximate(1e-6).run().unwrap();
    assert_eq!(exact, approx);
    assert_eq!(exact.num_clusters(), 2);
}

#[test]
fn rho_validation_rejects_nonpositive_values() {
    let pts = vec![geom::Point2::new([0.0, 0.0])];
    assert!(Dbscan::exact(&pts, 1.0, 1).approximate(0.0).run().is_err());
    assert!(Dbscan::exact(&pts, 1.0, 1)
        .approximate(f64::NAN)
        .run()
        .is_err());
}
