//! Integration tests: every exact variant must reproduce the standard DBSCAN
//! clustering (checked against the O(n²) brute-force oracle) on a variety of
//! datasets and dimensions.

use baselines::brute_force_dbscan;
use datagen::{seed_spreader, uniform_fill, SeedSpreaderConfig};
use geom::{Point, Point2};
use pardbscan::{CellGraphMethod, CellMethod, Clustering, Dbscan, MarkCoreMethod};
use rand::prelude::*;

/// Converts a baseline clustering into the core crate's [`Clustering`] so the
/// two canonical forms can be compared directly.
fn to_clustering(b: &baselines::BaselineClustering) -> Clustering {
    Clustering::from_raw(b.core.clone(), b.clusters.clone())
}

fn assert_matches_brute<const D: usize>(points: &[Point<D>], eps: f64, min_pts: usize) {
    let want = to_clustering(&brute_force_dbscan(points, eps, min_pts));
    // All variant combinations that are valid for this dimension.
    let mut variants: Vec<(CellMethod, MarkCoreMethod, CellGraphMethod, bool)> = Vec::new();
    for mark in [MarkCoreMethod::Scan, MarkCoreMethod::QuadTree] {
        for bucketing in [false, true] {
            variants.push((CellMethod::Grid, mark, CellGraphMethod::Bcp, bucketing));
            variants.push((
                CellMethod::Grid,
                mark,
                CellGraphMethod::QuadTreeBcp,
                bucketing,
            ));
        }
    }
    if D == 2 {
        for cell in [CellMethod::Grid, CellMethod::Box] {
            for graph in [
                CellGraphMethod::Bcp,
                CellGraphMethod::Usec,
                CellGraphMethod::Delaunay,
            ] {
                variants.push((cell, MarkCoreMethod::Scan, graph, false));
            }
        }
    }
    for (cell, mark, graph, bucketing) in variants {
        let got = Dbscan::exact(points, eps, min_pts)
            .cell_method(cell)
            .mark_core(mark)
            .cell_graph(graph)
            .bucketing(bucketing)
            .run()
            .unwrap();
        assert_eq!(
            got,
            want,
            "variant {cell:?}/{mark:?}/{graph:?}/bucketing={bucketing} differs from brute force \
             (eps={eps}, min_pts={min_pts}, n={})",
            points.len()
        );
    }
}

#[test]
fn random_uniform_2d_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(100);
    for _ in 0..3 {
        let n = rng.gen_range(100..500);
        let pts: Vec<Point2> = (0..n)
            .map(|_| Point2::new([rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)]))
            .collect();
        assert_matches_brute(&pts, 1.0, 5);
        assert_matches_brute(&pts, 2.5, 10);
    }
}

#[test]
fn random_uniform_3d_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(200);
    let pts: Vec<Point<3>> = (0..600)
        .map(|_| {
            Point::new([
                rng.gen_range(0.0..12.0),
                rng.gen_range(0.0..12.0),
                rng.gen_range(0.0..12.0),
            ])
        })
        .collect();
    assert_matches_brute(&pts, 1.2, 6);
}

#[test]
fn random_uniform_5d_and_7d_match_brute_force() {
    let mut rng = StdRng::seed_from_u64(300);
    let pts5: Vec<Point<5>> = (0..500)
        .map(|_| {
            let mut c = [0.0; 5];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.0..5.0);
            }
            Point::new(c)
        })
        .collect();
    assert_matches_brute(&pts5, 1.5, 8);

    let pts7: Vec<Point<7>> = (0..400)
        .map(|_| {
            let mut c = [0.0; 7];
            for v in c.iter_mut() {
                *v = rng.gen_range(0.0..3.0);
            }
            Point::new(c)
        })
        .collect();
    assert_matches_brute(&pts7, 1.5, 10);
}

#[test]
fn seed_spreader_2d_matches_brute_force() {
    let cfg = SeedSpreaderConfig {
        extent: 500.0,
        vicinity: 10.0,
        step: 5.0,
        ..SeedSpreaderConfig::simden(800, 11)
    };
    let pts = seed_spreader::<2>(&cfg);
    assert_matches_brute(&pts, 15.0, 10);
}

#[test]
fn seed_spreader_varden_3d_matches_brute_force() {
    let cfg = SeedSpreaderConfig {
        extent: 500.0,
        vicinity: 10.0,
        step: 5.0,
        ..SeedSpreaderConfig::varden(700, 13)
    };
    let pts = seed_spreader::<3>(&cfg);
    assert_matches_brute(&pts, 20.0, 10);
}

#[test]
fn uniform_fill_small_matches_brute_force() {
    let pts = uniform_fill::<2>(400, 20.0, 17);
    assert_matches_brute(&pts, 1.0, 4);
}

#[test]
fn parallel_baselines_also_match_brute_force() {
    // The baseline implementations themselves are validated here at the
    // integration level so the benchmark comparisons are apples-to-apples.
    let mut rng = StdRng::seed_from_u64(400);
    let pts: Vec<Point<3>> = (0..400)
        .map(|_| {
            Point::new([
                rng.gen_range(0.0..8.0),
                rng.gen_range(0.0..8.0),
                rng.gen_range(0.0..8.0),
            ])
        })
        .collect();
    let brute = to_clustering(&brute_force_dbscan(&pts, 1.0, 6));
    let naive = to_clustering(&baselines::naive_parallel_dbscan(&pts, 1.0, 6));
    let pds = to_clustering(&baselines::disjoint_set_dbscan(&pts, 1.0, 6));
    let serial = to_clustering(&baselines::sequential_grid_dbscan(&pts, 1.0, 6));
    let ours = Dbscan::exact(&pts, 1.0, 6).run().unwrap();
    assert_eq!(naive, brute);
    assert_eq!(pds, brute);
    assert_eq!(serial, brute);
    assert_eq!(ours, brute);
}
