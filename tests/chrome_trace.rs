//! Validates [`obs::export::chrome_trace`] against the Chrome trace-event
//! schema on a real sweep: the output parses as JSON, events carry the
//! required `name`/`ph`/`pid`/`tid`/`ts`/`dur` fields, complete events are
//! sorted by start time, and every event lane is labelled by a
//! `thread_name` metadata event. Also round-trips the `DBSCAN_TRACE_OUT`
//! file sink.
//!
//! Own-process integration binary (same pattern as `obs_trace.rs`): the
//! `DBSCAN_OBS` mode is read once per process, so the variable must be set
//! before the first instrumented call. Keep this file single-test.

use bench::jsonv::{parse, Value};
use dbscan::{ClusterSession, Params, PointCloud};
use std::collections::BTreeSet;

fn validate_trace(doc: &Value) -> (usize, BTreeSet<u64>) {
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "a real sweep records spans");

    let mut labelled_tids = BTreeSet::new();
    let mut event_tids = BTreeSet::new();
    let mut complete_events = 0usize;
    let mut last_ts = f64::NEG_INFINITY;
    for event in events {
        assert!(event.get("name").and_then(Value::as_str).is_some());
        assert_eq!(event.get("pid").and_then(Value::as_f64), Some(1.0));
        let tid = event.get("tid").and_then(Value::as_f64).expect("tid") as u64;
        match event.get("ph").and_then(Value::as_str).expect("ph") {
            "M" => {
                assert_eq!(
                    event.get("name").and_then(Value::as_str),
                    Some("thread_name")
                );
                assert!(event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .is_some());
                labelled_tids.insert(tid);
            }
            "X" => {
                let ts = event.get("ts").and_then(Value::as_f64).expect("ts");
                let dur = event.get("dur").and_then(Value::as_f64).expect("dur");
                assert!(ts >= 0.0 && ts.is_finite());
                assert!(dur >= 0.0 && dur.is_finite());
                assert!(
                    ts >= last_ts,
                    "complete events must be sorted by start time ({ts} < {last_ts})"
                );
                last_ts = ts;
                assert!(event
                    .get("args")
                    .and_then(|a| a.get("seq"))
                    .and_then(Value::as_f64)
                    .is_some());
                event_tids.insert(tid);
                complete_events += 1;
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(
        event_tids.is_subset(&labelled_tids),
        "every event lane needs a thread_name label: {event_tids:?} vs {labelled_tids:?}"
    );
    (complete_events, event_tids)
}

#[test]
fn chrome_trace_of_a_real_sweep_conforms_to_the_trace_event_schema() {
    std::env::set_var("DBSCAN_OBS", "trace");
    assert!(obs::trace_enabled());

    let rows: Vec<[f64; 2]> = (0..600)
        .map(|i| [0.05 * (i % 100) as f64, 0.02 * (i / 100) as f64])
        .collect();
    let session = ClusterSession::ingest(PointCloud::from_rows(&rows).unwrap()).unwrap();
    let _ = session.take_trace(); // start from an empty ring
    let grid = session.sweep(([0.2, 0.3], [3, 5])).unwrap();
    assert_eq!(grid.len(), 4);

    let spans = session.take_trace();
    assert!(!spans.is_empty());
    let trace = obs::export::chrome_trace(&spans);
    let doc = parse(&trace).expect("chrome_trace emits valid JSON");
    let (complete_events, _) = validate_trace(&doc);
    assert_eq!(
        complete_events,
        spans.len(),
        "one complete event per recorded span"
    );

    // The sweep dispatches its per-(ε, minPts) cells through the engine, so
    // the session-level sweep span and the core phases are all present.
    let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
    let names: BTreeSet<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    for phase in [
        obs::phase::SWEEP,
        obs::phase::MARK_CORE,
        obs::phase::CLUSTER_CORE,
        obs::phase::CLUSTER_BORDER,
    ] {
        assert!(names.contains(phase), "missing {phase} in {names:?}");
    }

    // --- DBSCAN_TRACE_OUT round-trip: a query refills the ring, the sink
    // drains it into a file whose contents validate the same way.
    let outcome = session.query(Params::new(0.2, 3), dbscan::VariantConfig::exact());
    assert!(outcome.is_ok());
    let path = std::env::temp_dir().join(format!("dbscan_trace_test_{}.json", std::process::id()));
    std::env::set_var("DBSCAN_TRACE_OUT", &path);
    let written = obs::export::write_trace_out()
        .expect("DBSCAN_TRACE_OUT is set")
        .expect("trace file written");
    assert_eq!(written, path);
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = parse(&text).expect("trace file is valid JSON");
    validate_trace(&doc);
    assert!(
        session.take_trace().is_empty(),
        "the file sink drains the ring"
    );
    std::env::remove_var("DBSCAN_TRACE_OUT");
    let _ = std::fs::remove_file(&path);
}
