//! Integration tests for degenerate and adversarial inputs across variants.

use baselines::brute_force_dbscan;
use geom::{Point, Point2};
use pardbscan::{CellGraphMethod, CellMethod, Clustering, Dbscan};

fn to_clustering(b: &baselines::BaselineClustering) -> Clustering {
    Clustering::from_raw(b.core.clone(), b.clusters.clone())
}

fn all_2d_variants(pts: &[Point2], eps: f64, min_pts: usize) -> Vec<Clustering> {
    let mut out = Vec::new();
    for cell in [CellMethod::Grid, CellMethod::Box] {
        for graph in [
            CellGraphMethod::Bcp,
            CellGraphMethod::QuadTreeBcp,
            CellGraphMethod::Usec,
            CellGraphMethod::Delaunay,
        ] {
            out.push(
                Dbscan::exact(pts, eps, min_pts)
                    .cell_method(cell)
                    .cell_graph(graph)
                    .run()
                    .unwrap(),
            );
        }
    }
    out
}

#[test]
fn empty_input() {
    let pts: Vec<Point2> = Vec::new();
    for c in all_2d_variants(&pts, 1.0, 5) {
        assert!(c.is_empty());
        assert_eq!(c.num_clusters(), 0);
    }
}

#[test]
fn single_point() {
    let pts = vec![Point2::new([3.0, 4.0])];
    for c in all_2d_variants(&pts, 1.0, 2) {
        assert!(c.is_noise(0));
    }
    for c in all_2d_variants(&pts, 1.0, 1) {
        assert!(c.is_core(0));
        assert_eq!(c.num_clusters(), 1);
    }
}

#[test]
fn all_identical_points() {
    let pts = vec![Point2::new([7.0, -3.0]); 100];
    let want = to_clustering(&brute_force_dbscan(&pts, 0.5, 10));
    for c in all_2d_variants(&pts, 0.5, 10) {
        assert_eq!(c, want);
        assert_eq!(c.num_clusters(), 1);
        assert!(c.core_flags().iter().all(|&x| x));
    }
}

#[test]
fn collinear_points() {
    // Equally spaced points on a line: a single chain cluster when the
    // spacing is within eps, all noise when it is not.
    let pts: Vec<Point2> = (0..200).map(|i| Point2::new([i as f64, 0.0])).collect();
    let want_connected = to_clustering(&brute_force_dbscan(&pts, 1.0, 3));
    for c in all_2d_variants(&pts, 1.0, 3) {
        assert_eq!(c, want_connected);
        assert_eq!(c.num_clusters(), 1);
    }
    let want_noise = to_clustering(&brute_force_dbscan(&pts, 0.4, 3));
    for c in all_2d_variants(&pts, 0.4, 3) {
        assert_eq!(c, want_noise);
        assert_eq!(c.num_clusters(), 0);
    }
}

#[test]
fn pairs_at_exactly_eps_distance() {
    // DBSCAN's neighbourhood is inclusive: points at distance exactly eps
    // count. Two groups whose closest points are exactly eps apart must merge.
    let pts = vec![
        Point2::new([0.0, 0.0]),
        Point2::new([0.0, 0.2]),
        Point2::new([0.0, 0.4]),
        Point2::new([1.0, 0.0]),
        Point2::new([1.0, 0.2]),
        Point2::new([1.0, 0.4]),
    ];
    let want = to_clustering(&brute_force_dbscan(&pts, 1.0, 3));
    for c in all_2d_variants(&pts, 1.0, 3) {
        assert_eq!(c, want);
        assert_eq!(
            c.num_clusters(),
            1,
            "exactly-eps pair must connect the groups"
        );
    }
}

#[test]
fn min_pts_larger_than_n() {
    let pts: Vec<Point2> = (0..50)
        .map(|i| Point2::new([0.01 * i as f64, 0.0]))
        .collect();
    for c in all_2d_variants(&pts, 10.0, 1_000) {
        assert_eq!(c.num_clusters(), 0);
        assert!(c.core_flags().iter().all(|&x| !x));
        assert_eq!(c.num_noise(), 50);
    }
}

#[test]
fn huge_eps_puts_everything_in_one_cluster() {
    let pts: Vec<Point<3>> = (0..300)
        .map(|i| Point::new([i as f64, (i * 7 % 13) as f64, (i * 3 % 5) as f64]))
        .collect();
    let c = Dbscan::exact(&pts, 1.0e6, 5).run().unwrap();
    assert_eq!(c.num_clusters(), 1);
    assert!(c.core_flags().iter().all(|&x| x));
}

#[test]
fn extreme_coordinates_are_handled() {
    // Large magnitudes and negative coordinates.
    let pts = vec![
        Point2::new([-1.0e7, -1.0e7]),
        Point2::new([-1.0e7 + 0.5, -1.0e7]),
        Point2::new([-1.0e7 + 1.0, -1.0e7]),
        Point2::new([1.0e7, 1.0e7]),
        Point2::new([1.0e7 + 0.5, 1.0e7]),
        Point2::new([1.0e7 + 1.0, 1.0e7]),
    ];
    let want = to_clustering(&brute_force_dbscan(&pts, 0.6, 2));
    for c in all_2d_variants(&pts, 0.6, 2) {
        assert_eq!(c, want);
        assert_eq!(c.num_clusters(), 2);
    }
}

#[test]
fn thirteen_dimensional_points_run_exact_and_approximate() {
    // The TeraClickLog dimensionality (d = 13). All points in a tight ball:
    // one cluster, everything core.
    let pts: Vec<Point<13>> = (0..500)
        .map(|i| {
            let mut c = [0.0; 13];
            for (k, v) in c.iter_mut().enumerate() {
                *v = ((i * (k + 1)) % 17) as f64 * 0.01;
            }
            Point::new(c)
        })
        .collect();
    let exact = Dbscan::exact(&pts, 5.0, 100).run().unwrap();
    assert_eq!(exact.num_clusters(), 1);
    assert!(exact.core_flags().iter().all(|&x| x));
    let approx = Dbscan::exact(&pts, 5.0, 100)
        .approximate(0.01)
        .run()
        .unwrap();
    assert_eq!(approx.num_clusters(), 1);
}
