//! Property test for the streaming subsystem: after *any* applied sequence
//! of insert/delete batches, the exact-variant labels of a
//! `StreamingClusterer` must be equivalent (up to cluster renaming, which
//! the canonical `Clustering` numbering removes) to a from-scratch
//! `pardbscan::dbscan` run on the final live point set — across dimensions
//! and, in 2D, across the batch pipeline's cell methods, since every exact
//! variant produces the same labels.
//!
//! Covered shapes: random interleavings of mixed batches, delete-all,
//! reinsert-after-delete, and a batch that empties a whole cluster.

use dbscan_stream::{StreamingClusterer, UpdateBatch};
use geom::Point;
use pardbscan::{CellMethod, Dbscan, DbscanParams};
use rand::prelude::*;

fn random_points<const D: usize>(n: usize, extent: f64, rng: &mut StdRng) -> Vec<Point<D>> {
    (0..n)
        .map(|_| {
            let mut coords = [0.0; D];
            for c in coords.iter_mut() {
                *c = rng.gen_range(0.0..extent);
            }
            Point::new(coords)
        })
        .collect()
}

/// Asserts the streaming labels equal a from-scratch run on the live set,
/// through every cell method valid in dimension `D`.
fn assert_matches_from_scratch<const D: usize>(clusterer: &StreamingClusterer<D>, context: &str) {
    let live: Vec<Point<D>> = clusterer
        .live_points()
        .into_iter()
        .map(|(_, p)| p)
        .collect();
    let params = clusterer.params();
    let streamed = clusterer.clustering();
    assert_eq!(streamed.len(), live.len(), "{context}: live count");
    let grid = Dbscan::new(&live, params)
        .cell_method(CellMethod::Grid)
        .run()
        .unwrap();
    assert_eq!(streamed, grid, "{context}: vs from-scratch grid run");
    if D == 2 {
        let boxed = Dbscan::new(&live, params)
            .cell_method(CellMethod::Box)
            .run()
            .unwrap();
        assert_eq!(streamed, boxed, "{context}: vs from-scratch box run");
    }
}

/// Runs `rounds` random mixed batches against a mirror of the live set.
fn churn<const D: usize>(seed: u64, n0: usize, extent: f64, params: DbscanParams, rounds: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = random_points::<D>(n0, extent, &mut rng);
    let mut clusterer = StreamingClusterer::new(initial, params).unwrap();
    assert_matches_from_scratch(&clusterer, &format!("D={D} seed={seed} initial"));

    for round in 0..rounds {
        let mut live_ids: Vec<usize> = clusterer
            .live_points()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        live_ids.shuffle(&mut rng);
        let num_deletes = rng.gen_range(0..=live_ids.len().min(25));
        let deletes: Vec<usize> = live_ids[..num_deletes].to_vec();
        let num_inserts = rng.gen_range(0..25);
        let inserts = random_points::<D>(num_inserts, extent, &mut rng);
        let stats = clusterer.apply(UpdateBatch { inserts, deletes }).unwrap();
        assert_eq!(stats.inserted, num_inserts);
        assert_eq!(stats.deleted, num_deletes);
        assert_matches_from_scratch(
            &clusterer,
            &format!("D={D} seed={seed} round={round} (+{num_inserts}/-{num_deletes})"),
        );
    }
}

#[test]
fn random_interleavings_match_from_scratch_2d() {
    churn::<2>(0xA1, 180, 8.0, DbscanParams::new(0.8, 5), 8);
    churn::<2>(0xA2, 60, 3.0, DbscanParams::new(0.7, 3), 8);
    // minPts = 1: every point is core, clusters are ε-connected components.
    churn::<2>(0xA3, 120, 10.0, DbscanParams::new(1.2, 1), 6);
}

#[test]
fn random_interleavings_match_from_scratch_3d() {
    churn::<3>(0xB1, 220, 6.0, DbscanParams::new(1.0, 6), 8);
    churn::<3>(0xB2, 90, 4.0, DbscanParams::new(0.9, 4), 6);
}

#[test]
fn delete_all_then_reinsert() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    let pts = random_points::<2>(150, 6.0, &mut rng);
    let params = DbscanParams::new(0.8, 4);
    let mut clusterer = StreamingClusterer::new(pts.clone(), params).unwrap();

    // Delete everything in one batch.
    let all_ids: Vec<usize> = clusterer
        .live_points()
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    let stats = clusterer.apply(UpdateBatch::deletes(all_ids)).unwrap();
    assert_eq!(stats.deleted, 150);
    assert_eq!(clusterer.num_live(), 0);
    assert!(clusterer.clustering().is_empty());
    assert_eq!(clusterer.clustering().num_clusters(), 0);

    // Reinsert the same coordinates (fresh ids): labels must match a
    // from-scratch run on them again.
    let stats = clusterer.apply(UpdateBatch::inserts(pts.clone())).unwrap();
    assert_eq!(stats.inserted, 150);
    assert_matches_from_scratch(&clusterer, "reinsert after delete-all");
    let from_scratch = pardbscan::dbscan(&pts, params.eps, params.min_pts).unwrap();
    assert_eq!(clusterer.clustering(), from_scratch);
}

#[test]
fn a_batch_that_empties_a_cluster() {
    // Two well-separated dense blobs; deleting every point of one blob in a
    // single batch must remove exactly that cluster.
    let mut rng = StdRng::seed_from_u64(0xC2);
    let mut pts: Vec<Point<2>> = Vec::new();
    for _ in 0..40 {
        pts.push(Point::new([
            rng.gen_range(0.0..1.0),
            rng.gen_range(0.0..1.0),
        ]));
    }
    for _ in 0..40 {
        pts.push(Point::new([
            rng.gen_range(30.0..31.0),
            rng.gen_range(30.0..31.0),
        ]));
    }
    let params = DbscanParams::new(0.6, 4);
    let mut clusterer = StreamingClusterer::new(pts, params).unwrap();
    assert_eq!(clusterer.clustering().num_clusters(), 2);

    let stats = clusterer
        .apply(UpdateBatch::deletes((40..80).collect()))
        .unwrap();
    assert_eq!(stats.deleted, 40);
    assert!(
        stats.components_reclustered >= 1,
        "emptying a cluster goes through the split path"
    );
    assert_eq!(clusterer.clustering().num_clusters(), 1);
    assert_matches_from_scratch(&clusterer, "after emptying a cluster");

    // The surviving blob's points are all still clustered.
    let clustering = clusterer.clustering();
    assert_eq!(clustering.len(), 40);
    assert_eq!(clustering.num_noise(), 0);
}

#[test]
fn heavy_churn_with_compaction_matches_from_scratch() {
    // Enough sustained churn to force overlay compactions mid-sequence; the
    // labels must stay correct across them.
    let mut rng = StdRng::seed_from_u64(0xC3);
    let pts = random_points::<2>(250, 9.0, &mut rng);
    let params = DbscanParams::new(0.9, 5);
    let mut clusterer = StreamingClusterer::new(pts, params).unwrap();
    let mut compactions = 0usize;
    for round in 0..10 {
        let mut live_ids: Vec<usize> = clusterer
            .live_points()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        live_ids.shuffle(&mut rng);
        let deletes: Vec<usize> = live_ids[..40.min(live_ids.len())].to_vec();
        let inserts = random_points::<2>(40, 9.0, &mut rng);
        let stats = clusterer.apply(UpdateBatch { inserts, deletes }).unwrap();
        compactions += stats.compacted as usize;
        assert_matches_from_scratch(&clusterer, &format!("churn round {round}"));
    }
    assert!(
        compactions > 0,
        "this churn level must compact at least once"
    );
}
