//! The corruption matrix: flip bits in each region of the two on-disk
//! formats — WAL header, WAL record payload, WAL record CRC trailer,
//! snapshot header, snapshot body sections, snapshot CRC trailers — and
//! assert the open path reports the right *typed* error for each region
//! (never a panic, never silently wrong data). The one deliberate
//! exception: a damaged final WAL record is indistinguishable from a torn
//! tail, so it truncates cleanly instead of failing.

use dbscan_durable::format::crc32;
use dbscan_durable::{DurableClusterer, DurableError, DurableOptions, FaultStorage, FsyncPolicy};
use dbscan_stream::UpdateBatch;
use geom::Point2;
use pardbscan::DbscanParams;
use std::path::Path;

const DIR: &str = "/store";

fn params() -> DbscanParams {
    DbscanParams::new(0.5, 3)
}

fn options() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::PerBatch,
        checkpoint_every: 0,
    }
}

fn cloud(n: usize) -> Vec<Point2> {
    (0..n)
        .map(|i| Point2::new([(i % 6) as f64 * 0.3, (i / 6) as f64 * 0.3]))
        .collect()
}

/// Builds a store with three WAL records past its initial snapshot and
/// returns the rebooted (durable-only) storage image.
fn build_store() -> FaultStorage {
    let storage = FaultStorage::new();
    let mut durable = DurableClusterer::create(
        storage.shared(),
        Path::new(DIR),
        cloud(18),
        params(),
        options(),
    )
    .unwrap();
    for step in 0..3usize {
        durable
            .apply(UpdateBatch {
                inserts: vec![Point2::new([step as f64 * 0.3, 1.4])],
                deletes: vec![step],
            })
            .unwrap();
    }
    storage.durable_clone()
}

/// The `(start, end)` byte range of each length-prefixed frame
/// (`[len u32][payload][crc u32]`) in `buf`.
fn frames(buf: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut at = 0;
    while at + 8 <= buf.len() {
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()) as usize;
        let end = at + 8 + len;
        assert!(end <= buf.len(), "frame at {at} overruns the file");
        out.push((at, end));
        at = end;
    }
    assert_eq!(at, buf.len(), "trailing garbage after the last frame");
    out
}

/// A copy of `image` whose file at `path` has bit `bit` of byte `offset`
/// flipped.
fn with_flipped_bit(image: &FaultStorage, path: &Path, offset: usize, bit: u8) -> FaultStorage {
    let copy = image.durable_clone();
    let storage = copy.shared();
    let mut bytes = storage.read(path).unwrap();
    bytes[offset] ^= 1 << bit;
    let mut f = storage.create(path).unwrap();
    f.write_all(&bytes).unwrap();
    f.sync().unwrap();
    copy
}

fn open_store(storage: &FaultStorage) -> Result<DurableClusterer<2>, DurableError> {
    DurableClusterer::<2>::open(storage.shared(), Path::new(DIR), options())
}

#[test]
fn wal_header_flips_are_typed_corruption() {
    let image = build_store();
    let wal_path = Path::new(DIR).join("wal.log");
    let bytes = image.shared().read(&wal_path).unwrap();
    let (start, end) = frames(&bytes)[0];
    // Every region of the header frame: length prefix, magic, version,
    // dim/base/params payload, CRC trailer.
    for offset in [start, start + 4, start + 9, start + 14, end - 4, end - 1] {
        for bit in [0u8, 7] {
            let corrupted = with_flipped_bit(&image, &wal_path, offset, bit);
            match open_store(&corrupted) {
                Err(DurableError::Corrupt { .. }) | Err(DurableError::VersionMismatch { .. }) => {}
                other => panic!(
                    "wal header byte {offset} bit {bit}: expected typed corruption, got {}",
                    describe(&other)
                ),
            }
        }
    }
}

#[test]
fn wal_mid_file_record_flips_name_the_damaged_lsn() {
    let image = build_store();
    let wal_path = Path::new(DIR).join("wal.log");
    let bytes = image.shared().read(&wal_path).unwrap();
    let all = frames(&bytes);
    assert_eq!(all.len(), 4, "header + three records");
    // Record 1 (the first after the header) is mid-file: records 2 and 3
    // follow it, so damage here is *not* a torn tail and must be reported
    // as corruption at that LSN — payload and CRC trailer alike.
    let (start, end) = all[1];
    for offset in [start + 8, (start + end) / 2, end - 4, end - 1] {
        let corrupted = with_flipped_bit(&image, &wal_path, offset, 3);
        match open_store(&corrupted) {
            Err(DurableError::Corrupt { lsn: Some(1), .. }) => {}
            other => panic!(
                "wal record byte {offset}: expected Corrupt at lsn 1, got {}",
                describe(&other)
            ),
        }
    }
}

#[test]
fn wal_tail_record_flips_truncate_instead_of_failing() {
    let image = build_store();
    let wal_path = Path::new(DIR).join("wal.log");
    let bytes = image.shared().read(&wal_path).unwrap();
    let all = frames(&bytes);
    let (start, end) = *all.last().unwrap();

    // Reference states after two and after three batches.
    let full = open_store(&image.durable_clone()).unwrap();
    assert_eq!(full.last_lsn(), 3);
    let prefix_image = {
        let copy = image.durable_clone();
        // Truncate the last record outright to obtain the 2-batch oracle.
        let storage = copy.shared();
        let mut f = storage.create(&wal_path).unwrap();
        f.write_all(&bytes[..start]).unwrap();
        f.sync().unwrap();
        copy
    };
    let prefix = open_store(&prefix_image).unwrap();
    assert_eq!(prefix.last_lsn(), 2);

    // A flipped bit anywhere in the final record looks like a torn tail:
    // recovery truncates it and lands on the 2-batch prefix.
    for offset in [start, start + 8, end - 1] {
        let corrupted = with_flipped_bit(&image, &wal_path, offset, 5);
        let recovered = open_store(&corrupted).unwrap();
        assert_eq!(recovered.last_lsn(), 2, "tail byte {offset}");
        assert_eq!(
            recovered.clustering(),
            prefix.clustering(),
            "tail byte {offset}"
        );
    }
}

#[test]
fn snapshot_flips_are_typed_corruption_in_every_region() {
    let image = build_store();
    let dir = Path::new(DIR);
    // Make the snapshot the only source of truth: checkpoint folds the WAL
    // into snapshot.3.bin, then drop the older snapshot so corruption
    // cannot be masked by fallback.
    let checkpointed = {
        let mut durable = open_store(&image).unwrap();
        durable.checkpoint().unwrap();
        drop(durable);
        image.durable_clone()
    };
    checkpointed
        .shared()
        .remove(&dir.join("snapshot.0.bin"))
        .unwrap();
    let snap_path = dir.join("snapshot.3.bin");
    let bytes = checkpointed.shared().read(&snap_path).unwrap();
    let all = frames(&bytes);
    assert!(all.len() >= 2, "snapshot = header frame + body frames");

    // One probe per region of every frame: length prefix, payload start,
    // payload middle, CRC trailer.
    for (i, &(start, end)) in all.iter().enumerate() {
        for offset in [start, start + 8, (start + end) / 2, end - 4, end - 1] {
            let corrupted = with_flipped_bit(&checkpointed, &snap_path, offset, 2);
            match open_store(&corrupted) {
                Err(DurableError::Corrupt { .. }) | Err(DurableError::VersionMismatch { .. }) => {}
                other => panic!(
                    "snapshot frame {i} byte {offset}: expected typed corruption, got {}",
                    describe(&other)
                ),
            }
        }
    }
}

#[test]
fn version_bumps_with_valid_checksums_are_version_mismatches() {
    let image = build_store();
    let wal_path = Path::new(DIR).join("wal.log");

    // A future format version with an *intact* CRC must be reported as a
    // version mismatch, not corruption: the bytes are fine, the reader is
    // too old. Bump the version field and recompute the frame checksum.
    let storage = image.shared();
    let mut bytes = storage.read(&wal_path).unwrap();
    let (start, end) = frames(&bytes)[0];
    bytes[start + 4 + 5] = 9; // version u32 LE lives right after the magic
    let crc = crc32(&bytes[start + 4..end - 4]).to_le_bytes();
    bytes[end - 4..end].copy_from_slice(&crc);
    let mut f = storage.create(&wal_path).unwrap();
    f.write_all(&bytes).unwrap();
    f.sync().unwrap();

    match open_store(&image) {
        Err(DurableError::VersionMismatch { found: 9, expected }) => {
            assert_eq!(expected, dbscan_durable::wal::WAL_VERSION);
        }
        other => panic!("expected VersionMismatch, got {}", describe(&other)),
    }
}

/// Facade-level: a corrupted real on-disk store surfaces the same typed
/// errors through `dbscan::Error`.
#[test]
fn facade_reports_typed_errors_for_on_disk_corruption() {
    use dbscan::{ClusterSession, Error, Params, PointCloud};

    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join("facade_corruption");
    let _ = std::fs::remove_dir_all(&dir);
    let rows: Vec<[f64; 2]> = (0..12)
        .map(|i| [0.25 * (i % 4) as f64, 0.25 * (i / 4) as f64])
        .collect();
    let opts = DurableOptions::default();
    {
        let mut session =
            ClusterSession::ingest_durable(PointCloud::from_rows(&rows).unwrap(), &dir, opts)
                .unwrap();
        let mut updates = session.updates(Params::new(0.4, 3)).unwrap();
        updates.insert(&[0.1, 0.1]).unwrap();
        updates.finish();
    }

    // Flip a bit in the WAL magic on the real filesystem.
    let wal_path = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[4] ^= 0x40;
    std::fs::write(&wal_path, &bytes).unwrap();

    match ClusterSession::open_durable(&dir, opts) {
        Err(Error::Corrupt { .. }) => {}
        other => panic!("expected Error::Corrupt, got {other:?}"),
    }

    // Remove the broken WAL: the checkpointed snapshot alone still opens.
    std::fs::remove_file(&wal_path).unwrap();
    let recovered = ClusterSession::open_durable(&dir, opts).unwrap();
    assert_eq!(recovered.num_points(), 13);
}

fn describe<T>(result: &Result<T, DurableError>) -> String {
    match result {
        Ok(_) => "Ok(..)".to_string(),
        Err(e) => format!("{e}"),
    }
}
