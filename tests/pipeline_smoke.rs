//! Larger end-to-end smoke tests: the full pipeline on the paper's synthetic
//! dataset families at a size big enough to exercise the parallel paths
//! (thousands of cells, many clusters), checking structural properties rather
//! than brute-force equality.

use datagen::{
    seed_spreader, single_cell_like, skewed_geolife_like, uniform_fill, SeedSpreaderConfig,
};
use geom::Point;
use pardbscan::{Dbscan, VariantConfig};

#[test]
fn simden_3d_produces_many_clusters_with_little_noise() {
    let cfg = SeedSpreaderConfig::simden(30_000, 1);
    let pts = seed_spreader::<3>(&cfg);
    let c = Dbscan::exact(&pts, 1_000.0, 10).run().unwrap();
    assert!(
        c.num_clusters() >= 3,
        "expected several clusters, got {}",
        c.num_clusters()
    );
    let noise_frac = c.num_noise() as f64 / pts.len() as f64;
    assert!(
        noise_frac < 0.05,
        "noise fraction {noise_frac} unexpectedly high"
    );
    // Clusters cover all non-noise points and every cluster id is in range.
    for i in 0..pts.len() {
        for &cl in c.clusters_of(i) {
            assert!(cl < c.num_clusters());
        }
    }
}

#[test]
fn varden_2d_with_bucketing_matches_non_bucketed() {
    let cfg = SeedSpreaderConfig::varden(20_000, 2);
    let pts = seed_spreader::<2>(&cfg);
    let a = Dbscan::exact(&pts, 800.0, 50).run().unwrap();
    let b = Dbscan::exact(&pts, 800.0, 50)
        .bucketing(true)
        .run()
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn uniform_fill_with_small_eps_is_mostly_noise() {
    // UniformFill in the paper's convention (side √n): with a small eps and a
    // high minPts, most points have sparse neighbourhoods.
    let pts = uniform_fill::<3>(20_000, (20_000f64).sqrt(), 3);
    let c = Dbscan::exact(&pts, 0.5, 100).run().unwrap();
    assert!(c.num_noise() > pts.len() / 2);
}

#[test]
fn single_cell_dataset_is_one_trivial_cluster() {
    // The TeraClickLog-at-published-parameters degeneracy: everything in one
    // cell, all core, one cluster (Table 2 discussion in the paper).
    let pts: Vec<Point<7>> = single_cell_like(50_000, 1_500.0, 4);
    let c = Dbscan::exact(&pts, 1_500.0, 100).run().unwrap();
    assert_eq!(c.num_clusters(), 1);
    assert_eq!(c.num_noise(), 0);
    assert!(c.core_flags().iter().all(|&x| x));
}

#[test]
fn skewed_dataset_runs_all_exact_variants_consistently() {
    let pts: Vec<Point<3>> = skewed_geolife_like(30_000, 2_000.0, 0.8, 4.0, 5);
    let reference = Dbscan::exact(&pts, 10.0, 100).run().unwrap();
    for variant in [
        VariantConfig::exact().with_bucketing(true),
        VariantConfig::exact_qt(),
        VariantConfig::exact_qt().with_bucketing(true),
    ] {
        let got = Dbscan::exact(&pts, 10.0, 100)
            .variant(variant)
            .run()
            .unwrap();
        assert_eq!(got, reference, "{}", variant.paper_name());
    }
    // The hot spot forms at least one dense cluster.
    assert!(reference.num_clusters() >= 1);
}

#[test]
fn approximate_runs_on_large_varden_and_respects_rho_monotonicity() {
    let cfg = SeedSpreaderConfig::varden(30_000, 6);
    let pts = seed_spreader::<5>(&cfg);
    let exact = Dbscan::exact(&pts, 2_000.0, 10).run().unwrap();
    let approx_small = Dbscan::exact(&pts, 2_000.0, 10)
        .approximate(0.001)
        .run()
        .unwrap();
    let approx_large = Dbscan::exact(&pts, 2_000.0, 10)
        .approximate(0.1)
        .run()
        .unwrap();
    // Approximation can only merge exact clusters, never split them, so the
    // cluster count is non-increasing in the amount of permitted merging.
    assert!(approx_small.num_clusters() <= exact.num_clusters());
    assert!(approx_large.num_clusters() <= exact.num_clusters());
    assert_eq!(approx_small.core_flags(), exact.core_flags());
}
