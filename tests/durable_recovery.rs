//! Recovery edge cases for the durable store: shapes a crash (or an
//! operator) can leave behind that the open path must handle exactly —
//! an empty WAL, a snapshot with no WAL, a WAL with no snapshot, a
//! checkpoint that landed exactly on the last record, and recovering the
//! same store twice. Each recovered state is checked against an
//! uninterrupted in-memory reference, and the facade-level open path is
//! exercised on a real on-disk store.

use dbscan::{ClusterSession, DurableOptions, Params, PointCloud};
use dbscan_durable::{init_store, DurableClusterer, FaultStorage, FsyncPolicy};
use dbscan_stream::{StreamingClusterer, UpdateBatch};
use geom::Point2;
use pardbscan::DbscanParams;
use std::path::Path;

fn params() -> DbscanParams {
    DbscanParams::new(0.5, 3)
}

fn cloud(n: usize) -> Vec<Point2> {
    (0..n)
        .map(|i| Point2::new([(i % 8) as f64 * 0.3, (i / 8) as f64 * 0.3]))
        .collect()
}

fn no_auto_checkpoint() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::PerBatch,
        checkpoint_every: 0,
    }
}

#[test]
fn empty_wal_reopens_to_the_initial_state() {
    let storage = FaultStorage::new();
    let dir = Path::new("/store");
    let durable = DurableClusterer::create(
        storage.shared(),
        dir,
        cloud(20),
        params(),
        no_auto_checkpoint(),
    )
    .unwrap();
    let reference = StreamingClusterer::new(cloud(20), params()).unwrap();
    drop(durable);

    // Crash immediately after create: the WAL exists but holds no records.
    let rebooted = storage.durable_clone();
    let mut recovered =
        DurableClusterer::<2>::open(rebooted.shared(), dir, no_auto_checkpoint()).unwrap();
    assert_eq!(recovered.last_lsn(), 0);
    assert_eq!(recovered.num_live(), 20);
    assert_eq!(recovered.clustering(), reference.clustering());

    // The recovered handle accepts new updates, continuing the LSN sequence.
    let stats = recovered
        .apply(UpdateBatch::inserts(vec![Point2::new([0.15, 0.15])]))
        .unwrap();
    assert_eq!(stats.inserted_ids, vec![20]);
    assert_eq!(recovered.last_lsn(), 1);
}

#[test]
fn snapshot_only_store_opens_without_a_wal() {
    let storage = FaultStorage::new();
    let dir = Path::new("/store");
    // A store that is just one snapshot (what `init_store` leaves behind):
    // no wal.log at all.
    init_store::<2>(&storage.shared(), dir, cloud(16), Some(params())).unwrap();

    let mut recovered =
        DurableClusterer::<2>::open(storage.shared(), dir, no_auto_checkpoint()).unwrap();
    assert_eq!(recovered.num_live(), 16);
    assert_eq!(recovered.last_lsn(), 0);
    let reference = StreamingClusterer::new(cloud(16), params()).unwrap();
    assert_eq!(recovered.clustering(), reference.clustering());

    // Opening started a fresh log at the snapshot's LSN; appends work.
    recovered.apply(UpdateBatch::deletes(vec![0])).unwrap();
    assert_eq!(recovered.num_live(), 15);
}

#[test]
fn wal_only_store_replays_from_the_empty_set() {
    let storage = FaultStorage::new();
    let dir = Path::new("/store");
    let mut durable = DurableClusterer::create(
        storage.shared(),
        dir,
        Vec::new(),
        params(),
        no_auto_checkpoint(),
    )
    .unwrap();
    let mut reference = StreamingClusterer::new(Vec::new(), params()).unwrap();
    for step in 0..4 {
        let batch = UpdateBatch::inserts(vec![
            Point2::new([step as f64 * 0.2, 0.0]),
            Point2::new([step as f64 * 0.2, 0.3]),
        ]);
        durable.apply(batch.clone()).unwrap();
        reference.apply(batch).unwrap();
    }
    drop(durable);

    // Lose the snapshot: the WAL alone (base LSN 0) must reconstruct the
    // whole history from the empty set.
    let rebooted = storage.durable_clone();
    rebooted
        .shared()
        .remove(&dir.join("snapshot.0.bin"))
        .unwrap();
    let recovered =
        DurableClusterer::<2>::open(rebooted.shared(), dir, no_auto_checkpoint()).unwrap();
    assert_eq!(recovered.last_lsn(), 4);
    assert_eq!(recovered.num_live(), 8);
    assert_eq!(recovered.clustering(), reference.clustering());
}

#[test]
fn checkpoint_exactly_at_the_last_record_recovers_without_replay() {
    let storage = FaultStorage::new();
    let dir = Path::new("/store");
    let mut durable = DurableClusterer::create(
        storage.shared(),
        dir,
        cloud(12),
        params(),
        no_auto_checkpoint(),
    )
    .unwrap();
    let mut reference = StreamingClusterer::new(cloud(12), params()).unwrap();
    for step in 0..4usize {
        let batch = UpdateBatch {
            inserts: vec![Point2::new([step as f64 * 0.25, 1.7])],
            deletes: vec![step],
        };
        durable.apply(batch.clone()).unwrap();
        reference.apply(batch).unwrap();
    }
    // Checkpoint lands exactly on the last record: the snapshot covers the
    // full history and the fresh WAL holds nothing to replay.
    durable.checkpoint().unwrap();
    drop(durable);

    let rebooted = storage.durable_clone();
    assert!(rebooted.shared().exists(&dir.join("snapshot.4.bin")));
    let mut recovered =
        DurableClusterer::<2>::open(rebooted.shared(), dir, no_auto_checkpoint()).unwrap();
    assert_eq!(recovered.last_lsn(), 4);
    assert_eq!(recovered.clustering(), reference.clustering());

    // The next batch continues the LSN sequence past the checkpoint.
    recovered
        .apply(UpdateBatch::inserts(vec![Point2::new([2.0, 2.0])]))
        .unwrap();
    assert_eq!(recovered.last_lsn(), 5);
}

#[test]
fn double_recovery_is_idempotent() {
    let storage = FaultStorage::new();
    let dir = Path::new("/store");
    let mut durable = DurableClusterer::create(
        storage.shared(),
        dir,
        cloud(18),
        params(),
        DurableOptions {
            fsync: FsyncPolicy::PerBatch,
            checkpoint_every: 2,
        },
    )
    .unwrap();
    for step in 0..5usize {
        durable
            .apply(UpdateBatch {
                inserts: vec![Point2::new([step as f64 * 0.3, 2.4])],
                deletes: vec![step * 2],
            })
            .unwrap();
    }
    drop(durable);

    // Recover the same durable image twice: both recoveries must agree in
    // labels, live ids, and position (recovery itself must not corrupt or
    // advance the store).
    let rebooted = storage.durable_clone();
    let first = DurableClusterer::<2>::open(rebooted.shared(), dir, no_auto_checkpoint()).unwrap();
    let (labels, live, lsn) = (first.clustering(), first.live_points(), first.last_lsn());
    drop(first);
    let second = DurableClusterer::<2>::open(rebooted.shared(), dir, no_auto_checkpoint()).unwrap();
    assert_eq!(second.clustering(), labels);
    assert_eq!(second.live_points(), live);
    assert_eq!(second.last_lsn(), lsn);
}

/// Facade-level recovery on a real on-disk store: a durable session's
/// update episode is WAL'd as it runs, so a copy of the store directory
/// taken mid-episode (a crash image) reopens to exactly the labels the
/// session was serving at that moment.
#[test]
fn facade_open_durable_recovers_a_mid_episode_crash_image() {
    let base = Path::new(env!("CARGO_TARGET_TMPDIR")).join("facade_recovery");
    let live_dir = base.join("live");
    let crash_dir = base.join("crash-image");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();

    let rows: Vec<[f64; 2]> = (0..14)
        .map(|i| [0.2 * (i % 7) as f64, 0.2 * (i / 7) as f64])
        .collect();
    let opts = DurableOptions {
        fsync: FsyncPolicy::PerBatch,
        checkpoint_every: 0,
    };
    let query = Params::new(0.45, 3);

    let mut session =
        ClusterSession::ingest_durable(PointCloud::from_rows(&rows).unwrap(), &live_dir, opts)
            .unwrap();
    let mut updates = session.updates(query).unwrap();
    updates.insert(&[0.2, 0.1]).unwrap();
    updates.insert(&[0.2, 0.3]).unwrap();
    updates.delete(0).unwrap();
    let labels_before = updates.labels();

    // "Crash": snapshot the store directory while the session still holds
    // it open — only what the WAL already fsync'd is in the image.
    std::fs::create_dir_all(&crash_dir).unwrap();
    for entry in std::fs::read_dir(&live_dir).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), crash_dir.join(entry.file_name())).unwrap();
    }
    updates.finish();
    drop(session);

    let recovered = ClusterSession::open_durable(&crash_dir, opts).unwrap();
    assert_eq!(recovered.dim(), 2);
    assert_eq!(recovered.num_points(), 15); // 14 + 2 inserts − 1 delete
    assert_eq!(recovered.cluster(query).unwrap(), labels_before);

    // The post-episode store (checkpointed on finish) reopens identically.
    let reopened = ClusterSession::open_durable(&live_dir, opts).unwrap();
    assert_eq!(reopened.cluster(query).unwrap(), labels_before);
}
