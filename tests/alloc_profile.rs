//! Allocation-accounting tests behind the `alloc-profile` feature: installs
//! [`obs::alloc::CountingAllocator`] as this binary's global allocator and
//! proves (a) the BCP distance kernel is allocation-free in steady state,
//! (b) EXPLAIN reports carry real allocation deltas (`alloc.profiled`), and
//! (c) cache-served repeat queries allocate strictly less than the fresh
//! build they reuse.
//!
//! Own-process integration binary (same pattern as `obs_trace.rs`): the
//! `DBSCAN_OBS` mode is read once per process, so the variable must be set
//! before the first instrumented call — and the allocator must be installed
//! here, in the binary, not by the `obs` library. Keep this file
//! single-test.
#![cfg(feature = "alloc-profile")]

use dbscan::{ClusterSession, Params, PointCloud, VariantConfig};
use geom::Point;

#[global_allocator]
static ALLOC: obs::alloc::CountingAllocator = obs::alloc::CountingAllocator;

#[test]
fn counting_allocator_accounts_for_operations_and_clears_the_bcp_hot_path() {
    std::env::set_var("DBSCAN_OBS", "counters");
    assert!(
        obs::alloc::profiling_active(),
        "the installed allocator has already counted this test's setup"
    );

    // --- (a) The BCP kernel allocates nothing in steady state. Measured
    // before any pool work starts, so no other thread can perturb the
    // process-wide counters.
    let a: Vec<Point<2>> = (0..64).map(|i| Point::new([i as f64, 0.0])).collect();
    let b: Vec<Point<2>> = (0..64).map(|i| Point::new([i as f64, 100.0])).collect();
    assert!(pardbscan::bichromatic_closest_pair(&a, &b).is_some());
    let before = obs::alloc::stats();
    for _ in 0..100 {
        std::hint::black_box(pardbscan::bichromatic_closest_pair(
            std::hint::black_box(&a),
            std::hint::black_box(&b),
        ));
    }
    let delta = obs::alloc::stats().since(&before);
    assert_eq!(
        delta.allocations, 0,
        "steady-state BCP must not touch the allocator"
    );
    assert_eq!(delta.bytes_allocated, 0);

    // --- (b) EXPLAIN reports are backed by real deltas when the counting
    // allocator is installed.
    let rows: Vec<[f64; 2]> = (0..600)
        .map(|i| [0.05 * (i % 100) as f64, 0.02 * (i / 100) as f64])
        .collect();
    let session = ClusterSession::ingest(PointCloud::from_rows(&rows).unwrap()).unwrap();
    let params = Params::new(0.2, 3);
    session.query(params, VariantConfig::exact()).unwrap();
    let fresh = session.explain_last().unwrap();
    assert!(fresh.alloc.profiled);
    assert!(
        fresh.alloc.allocations > 0,
        "a fresh query builds the index and must allocate"
    );
    assert!(fresh.alloc.bytes_allocated > 0);

    // --- (c) A cache-served repeat of the same query reuses the index and
    // core set, so its allocation footprint is strictly smaller than the
    // fresh build's.
    session.query(params, VariantConfig::exact()).unwrap();
    let repeat = session.explain_last().unwrap();
    assert!(repeat.alloc.profiled);
    assert!(
        repeat.phase(obs::phase::PARTITION).unwrap().cache_skipped(),
        "the repeat query must be cache-served for the comparison to mean anything"
    );
    assert!(
        repeat.alloc.allocations < fresh.alloc.allocations,
        "cache-served query allocated {} times, fresh build {}",
        repeat.alloc.allocations,
        fresh.alloc.allocations
    );
}
