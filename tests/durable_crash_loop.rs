//! The crash-injection loop: every mutating storage operation the durable
//! store issues over a full create → apply × N → checkpoint lifecycle is a
//! crash site. For each site (and again with silently-dropped append
//! fsyncs layered on top) the store is crashed exactly there, rebooted
//! from its durable bytes, and recovered — and the recovered clustering
//! must be **byte-identical** to a from-scratch batch `Dbscan` run over
//! the corresponding prefix's live set (the stream ≡ batch oracle). Under
//! the per-batch fsync policy every acknowledged batch must survive;
//! after recovery the remaining batches replay to the same final state an
//! uninterrupted run reaches.

use dbscan_durable::{DurableClusterer, DurableOptions, FaultPlan, FaultStorage, FsyncPolicy};
use dbscan_stream::UpdateBatch;
use geom::Point2;
use pardbscan::{Clustering, Dbscan, DbscanParams};
use std::path::Path;

const DIR: &str = "/store";
const N_BATCHES: usize = 10;

fn params() -> DbscanParams {
    DbscanParams::new(0.45, 3)
}

fn options() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::PerBatch,
        checkpoint_every: 3,
    }
}

fn initial_points() -> Vec<Point2> {
    // Two blobs plus strays, so inserts and deletes move cluster borders.
    let mut pts = Vec::new();
    for i in 0..12 {
        pts.push(Point2::new([0.25 * (i % 4) as f64, 0.25 * (i / 4) as f64]));
    }
    for i in 0..8 {
        pts.push(Point2::new([
            3.0 + 0.3 * (i % 3) as f64,
            0.3 * (i / 3) as f64,
        ]));
    }
    pts.push(Point2::new([1.6, 1.6]));
    pts.push(Point2::new([-1.4, 0.8]));
    pts
}

/// The uninterrupted history the durable store should preserve: the live
/// set (external id → point) after each batch prefix.
struct Model {
    live: Vec<(u64, Point2)>, // ascending external id
    next_ext: u64,
}

impl Model {
    fn new(points: &[Point2]) -> Self {
        Model {
            live: points
                .iter()
                .copied()
                .enumerate()
                .map(|(i, p)| (i as u64, p))
                .collect(),
            next_ext: points.len() as u64,
        }
    }

    fn apply(&mut self, batch: &UpdateBatch<2>) {
        self.live
            .retain(|&(id, _)| !batch.deletes.contains(&(id as usize)));
        for &p in &batch.inserts {
            self.live.push((self.next_ext, p));
            self.next_ext += 1;
        }
    }

    /// The batch oracle: a from-scratch run over the live set in ascending
    /// external-id order — the order recovered clusterings are emitted in.
    fn batch_clustering(&self) -> Clustering {
        let pts: Vec<Point2> = self.live.iter().map(|&(_, p)| p).collect();
        Dbscan::new(&pts, params()).run().unwrap()
    }
}

/// The scripted update sequence (deletes are external ids, chosen to stay
/// valid for the prefix they apply to) plus the oracle clustering after
/// each prefix 0..=N_BATCHES.
fn scenario() -> (Vec<UpdateBatch<2>>, Vec<Clustering>) {
    let initial = initial_points();
    let mut model = Model::new(&initial);
    let mut batches = Vec::new();
    let mut oracle = vec![model.batch_clustering()];
    for step in 0..N_BATCHES {
        let inserts: Vec<Point2> = (0..=(step % 3))
            .map(|j| {
                Point2::new([
                    0.25 * ((step + j) % 5) as f64 + 0.05,
                    0.25 * (step % 4) as f64 + 1.5,
                ])
            })
            .collect();
        // Delete two live points picked at a stride — ids shift as
        // history grows, so deletes exercise the external-id translation.
        let deletes: Vec<usize> = model
            .live
            .iter()
            .skip(step)
            .step_by(7)
            .take(2)
            .map(|&(id, _)| id as usize)
            .collect();
        let batch = UpdateBatch { inserts, deletes };
        model.apply(&batch);
        oracle.push(model.batch_clustering());
        batches.push(batch);
    }
    (batches, oracle)
}

/// Runs the full lifecycle against `storage`, swallowing injected faults.
/// Returns how many applies were acknowledged (`Ok`).
fn run_scenario(storage: &FaultStorage, batches: &[UpdateBatch<2>]) -> (bool, usize) {
    let dir = Path::new(DIR);
    let mut durable = match DurableClusterer::create(
        storage.shared(),
        dir,
        initial_points(),
        params(),
        options(),
    ) {
        Ok(d) => d,
        Err(_) => return (false, 0),
    };
    let mut acked = 0;
    for batch in batches {
        if durable.apply(batch.clone()).is_ok() {
            acked += 1;
        }
    }
    (true, acked)
}

/// Crashes the lifecycle at operation `op`, reboots, recovers, and checks
/// the recovered state against the prefix oracle; then finishes the
/// remaining batches and checks the final state. `dropped_fsyncs` layers
/// the lying-storage failure mode on top.
fn crash_at(op: u64, batches: &[UpdateBatch<2>], oracle: &[Clustering], dropped_fsyncs: bool) {
    let dir = Path::new(DIR);
    let storage = FaultStorage::with_plan(FaultPlan {
        crash_at_op: Some(op),
        drop_append_fsyncs: dropped_fsyncs,
        seed: 0x5EED_F00D ^ op.wrapping_mul(0x9E37_79B9),
    });
    let (created, acked) = run_scenario(&storage, batches);
    let rebooted = storage.durable_clone();
    let context = format!("crash at op {op}, dropped_fsyncs={dropped_fsyncs}");

    let mut recovered = match DurableClusterer::<2>::open(rebooted.shared(), dir, options()) {
        Ok(r) => r,
        Err(err) => {
            // The only state with nothing to recover is a store whose
            // creation never committed its initial snapshot.
            assert!(
                !created,
                "{context}: open failed after a successful create: {err}"
            );
            return;
        }
    };

    // The recovered state must be exactly some batch prefix: no torn
    // half-applied record, no reordering, no silent data loss past a
    // record the WAL retained. The WAL position says which prefix.
    let j = recovered.last_lsn() as usize;
    assert!(j <= batches.len(), "{context}: impossible lsn {j}");
    assert_eq!(
        recovered.clustering(),
        oracle[j],
        "{context}: recovered clustering is not the batch oracle of prefix {j}"
    );
    if created && !dropped_fsyncs {
        // Per-batch fsync: a batch whose apply returned Ok is durable.
        // (Honest storage only — dropped fsyncs are exactly the violation.)
        assert!(
            j >= acked,
            "{context}: {acked} batches were acknowledged but only {j} survived"
        );
    }

    // The recovered handle is a full citizen: the rest of the history
    // applies cleanly and lands on the uninterrupted final state.
    for batch in &batches[j..] {
        recovered.apply(batch.clone()).unwrap();
    }
    assert_eq!(
        recovered.clustering(),
        oracle[batches.len()],
        "{context}: resumed history diverged from the uninterrupted run"
    );
}

#[test]
fn every_storage_operation_is_a_recoverable_crash_site() {
    let (batches, oracle) = scenario();

    // Probe pass: count the lifecycle's mutating storage operations — each
    // one is a distinct crash site (and each is exercised twice below,
    // with honest and with fsync-dropping storage).
    let probe = FaultStorage::new();
    let (created, acked) = run_scenario(&probe, &batches);
    assert!(created);
    assert_eq!(acked, N_BATCHES);
    let total_ops = probe.op_count();
    assert!(
        total_ops >= 50,
        "crash-injection coverage shrank: only {total_ops} distinct sites"
    );

    // Sanity: the fault-free run recovers to the full history.
    let rebooted = probe.durable_clone();
    let full = DurableClusterer::<2>::open(rebooted.shared(), Path::new(DIR), options()).unwrap();
    assert_eq!(full.clustering(), oracle[N_BATCHES]);

    for op in 1..=total_ops {
        crash_at(op, &batches, &oracle, false);
    }
}

#[test]
fn dropped_append_fsyncs_still_recover_to_a_consistent_prefix() {
    let (batches, oracle) = scenario();
    let probe = FaultStorage::new();
    run_scenario(&probe, &batches);
    let total_ops = probe.op_count();

    // Every crash site again, now on storage that acknowledges WAL fsyncs
    // it never performed: acknowledged batches may be lost (that is the
    // modelled lie), but recovery must still land on a clean prefix.
    for op in 1..=total_ops {
        crash_at(op, &batches, &oracle, true);
    }
}

#[test]
fn lying_storage_without_a_crash_recovers_the_last_checkpoint() {
    let (batches, oracle) = scenario();
    let storage = FaultStorage::with_plan(FaultPlan {
        crash_at_op: None,
        drop_append_fsyncs: true,
        seed: 7,
    });
    let (created, acked) = run_scenario(&storage, &batches);
    assert!(created);
    assert_eq!(acked, N_BATCHES);

    // WAL records never reached durable media, so a reboot falls back to
    // the last checkpoint (every 3rd batch): prefix 9 of 10.
    let rebooted = storage.durable_clone();
    let recovered =
        DurableClusterer::<2>::open(rebooted.shared(), Path::new(DIR), options()).unwrap();
    let j = recovered.last_lsn() as usize;
    assert_eq!(j, 9, "expected recovery at the last auto-checkpoint");
    assert!(
        j < N_BATCHES,
        "the dropped-fsync lie should have lost the tail"
    );
    assert_eq!(recovered.clustering(), oracle[j]);
}
