//! Integration tests: all exact variants must agree with each other (not just
//! on small brute-force-checkable inputs but on larger clustered datasets),
//! and the named paper variants must be expressible through `VariantConfig`.

use datagen::{seed_spreader, skewed_geolife_like, SeedSpreaderConfig};
use geom::{Point, Point2};
use pardbscan::{CellGraphMethod, CellMethod, Dbscan, MarkCoreMethod, VariantConfig};

#[test]
fn all_2d_variants_agree_on_seed_spreader_data() {
    let cfg = SeedSpreaderConfig {
        extent: 2_000.0,
        vicinity: 20.0,
        step: 10.0,
        ..SeedSpreaderConfig::simden(5_000, 3)
    };
    let pts = seed_spreader::<2>(&cfg);
    let eps = 30.0;
    let min_pts = 20;

    let reference = Dbscan::exact(&pts, eps, min_pts).run().unwrap();
    assert!(
        reference.num_clusters() >= 2,
        "fixture should produce several clusters"
    );

    for cell in [CellMethod::Grid, CellMethod::Box] {
        for graph in [
            CellGraphMethod::Bcp,
            CellGraphMethod::QuadTreeBcp,
            CellGraphMethod::Usec,
            CellGraphMethod::Delaunay,
        ] {
            for mark in [MarkCoreMethod::Scan, MarkCoreMethod::QuadTree] {
                for bucketing in [false, true] {
                    let got = Dbscan::exact(&pts, eps, min_pts)
                        .cell_method(cell)
                        .cell_graph(graph)
                        .mark_core(mark)
                        .bucketing(bucketing)
                        .run()
                        .unwrap();
                    assert_eq!(
                        got, reference,
                        "{cell:?}/{graph:?}/{mark:?}/bucketing={bucketing}"
                    );
                }
            }
        }
    }
}

#[test]
fn grid_variants_agree_on_5d_varden_data() {
    let cfg = SeedSpreaderConfig {
        extent: 3_000.0,
        vicinity: 40.0,
        step: 20.0,
        ..SeedSpreaderConfig::varden(4_000, 9)
    };
    let pts = seed_spreader::<5>(&cfg);
    let eps = 100.0;
    let min_pts = 15;

    let reference = Dbscan::exact(&pts, eps, min_pts).run().unwrap();
    for variant in [
        VariantConfig::exact(),
        VariantConfig::exact().with_bucketing(true),
        VariantConfig::exact_qt(),
        VariantConfig::exact_qt().with_bucketing(true),
    ] {
        let got = Dbscan::exact(&pts, eps, min_pts)
            .variant(variant)
            .run()
            .unwrap();
        assert_eq!(got, reference, "{}", variant.paper_name());
    }
}

#[test]
fn skewed_data_exercises_bucketing_consistently() {
    // Heavily skewed data is where bucketing changes the query schedule the
    // most; the clustering must nevertheless be identical.
    let pts: Vec<Point<3>> = skewed_geolife_like(8_000, 1_000.0, 0.7, 3.0, 5);
    let eps = 8.0;
    let min_pts = 30;
    let plain = Dbscan::exact(&pts, eps, min_pts).run().unwrap();
    let bucketed = Dbscan::exact(&pts, eps, min_pts)
        .bucketing(true)
        .run()
        .unwrap();
    let qt = Dbscan::exact(&pts, eps, min_pts)
        .variant(VariantConfig::exact_qt().with_bucketing(true))
        .run()
        .unwrap();
    assert_eq!(plain, bucketed);
    assert_eq!(plain, qt);
    assert!(plain.num_clusters() >= 1);
}

#[test]
fn paper_named_variants_run_end_to_end() {
    let pts: Vec<Point2> = (0..2_000)
        .map(|i| {
            let cluster = (i % 4) as f64;
            Point2::new([
                cluster * 100.0 + (i as f64 * 0.37).sin() * 3.0,
                cluster * 50.0 + (i as f64 * 0.53).cos() * 3.0,
            ])
        })
        .collect();
    let reference = Dbscan::exact(&pts, 2.0, 10).run().unwrap();
    assert_eq!(reference.num_clusters(), 4);
    for (name, variant) in [
        ("our-exact", VariantConfig::exact()),
        ("our-exact-qt", VariantConfig::exact_qt()),
        (
            "our-exact-bucketing",
            VariantConfig::exact().with_bucketing(true),
        ),
        (
            "our-exact-qt-bucketing",
            VariantConfig::exact_qt().with_bucketing(true),
        ),
    ] {
        assert_eq!(variant.paper_name(), name);
        let got = Dbscan::exact(&pts, 2.0, 10).variant(variant).run().unwrap();
        assert_eq!(got, reference, "{name}");
    }
}
