//! Invariant tests for `DBSCAN_OBS=trace`: spans record with sane phase
//! accounting, and the registry's cache counters stay in lock-step with the
//! engine's per-snapshot `CacheStats`.
//!
//! Own-process integration binary (same pattern as `force_scalar.rs`): the
//! mode is read once per process, so the variable must be set before the
//! first instrumented call. Keep this file single-test.

use dbscan::{ClusterSession, Params, PointCloud, VariantConfig};
use std::time::Duration;

#[test]
fn trace_spans_and_registry_agree_with_query_stats() {
    std::env::set_var("DBSCAN_OBS", "trace");
    assert_eq!(obs::mode(), obs::ObsMode::Trace);

    let rows: Vec<[f64; 2]> = (0..500)
        .map(|i| [0.05 * (i % 100) as f64, 0.02 * (i / 100) as f64])
        .collect();
    let session = ClusterSession::ingest(PointCloud::from_rows(&rows).unwrap()).unwrap();
    let params = Params::new(0.2, 3);

    // --- Invariant 1: per-phase span durations sum to at most the query's
    // end-to-end wall time (the phases run sequentially inside it).
    let _ = session.take_trace(); // start from an empty ring
    let query_report_before = session.metrics();
    let outcome = session.query(params, VariantConfig::exact()).unwrap();
    let query_report_after = session.metrics();
    assert_eq!(outcome.stats.variant, "our-exact");
    let trace = session.take_trace();
    assert!(!trace.is_empty(), "trace mode must record spans");

    let phase_names = [
        obs::phase::PARTITION,
        obs::phase::MARK_CORE,
        obs::phase::CLUSTER_CORE,
        obs::phase::CLUSTER_BORDER,
    ];
    let core_spans: Vec<_> = trace.iter().filter(|s| s.path == "core").collect();
    assert!(
        !core_spans.is_empty(),
        "a fresh-ε query runs the core phases"
    );
    for span in &core_spans {
        assert!(
            phase_names.contains(&span.phase)
                || span.phase == obs::phase::MARK_CORE_REGION
                || span.phase == obs::phase::CONNECT_REGION,
            "unexpected core phase {:?}",
            span.phase
        );
    }
    let phase_sum: Duration = core_spans
        .iter()
        .filter(|s| phase_names.contains(&s.phase))
        .map(|s| s.duration)
        .sum();
    assert!(
        phase_sum <= outcome.stats.total_time,
        "phase spans ({phase_sum:?}) exceed the query's total_time ({:?})",
        outcome.stats.total_time
    );

    // The dispatch layers wrapped the same work: one session-level and one
    // engine-level query span, each covering at least the core phases.
    assert_eq!(
        trace.iter().filter(|s| s.path == "session").count(),
        1,
        "one facade dispatch span"
    );
    assert_eq!(
        trace.iter().filter(|s| s.path == "engine").count(),
        1,
        "one engine query span"
    );

    // --- Invariant 2: after a scripted sweep, the registry's cache-counter
    // deltas equal the per-snapshot CacheStats deltas (single write path).
    let before_report = session.metrics();
    let before_stats = session.cache_stats();
    let grid = session.sweep(([0.2, 0.3], [3, 5])).unwrap();
    assert_eq!(grid.len(), 4);
    let after_report = session.metrics();
    let after_stats = session.cache_stats();

    let registry_delta = |name: &str| -> usize {
        (after_report.counter(name).unwrap_or(0) - before_report.counter(name).unwrap_or(0))
            as usize
    };
    assert_eq!(
        registry_delta("dbscan_partition_cache_hits_total"),
        after_stats.partition_hits - before_stats.partition_hits
    );
    assert_eq!(
        registry_delta("dbscan_partition_cache_misses_total"),
        after_stats.partition_misses - before_stats.partition_misses
    );
    assert_eq!(
        registry_delta("dbscan_core_cache_hits_total"),
        after_stats.core_hits - before_stats.core_hits
    );
    assert_eq!(
        registry_delta("dbscan_core_cache_misses_total"),
        after_stats.core_misses - before_stats.core_misses
    );

    // The query-duration histogram counted the one-shot query above exactly
    // once. (Sweeps dispatch cells through their own batched path, so they
    // do not observe this histogram — only `query_variant` calls do.)
    let before_count = query_report_before
        .histogram("dbscan_query_duration_seconds")
        .map(|h| h.count)
        .unwrap_or(0);
    let after_count = query_report_after
        .histogram("dbscan_query_duration_seconds")
        .map(|h| h.count)
        .unwrap_or(0);
    assert_eq!(after_count - before_count, 1);
}
