//! Read-under-write stress: reader threads hammer a [`dbscan::ConcurrentSession`]
//! while a writer publishes generations, then every observed generation is
//! replayed offline.
//!
//! The contract pinned down here:
//!
//! * readers never see a half-published state — every `current()` is a
//!   complete generation whose labels are byte-identical to a from-scratch
//!   batch run over that generation's own point set;
//! * generation ids are monotonic from any single reader's perspective;
//! * a pinned old generation stays queryable (and unchanged) after the
//!   writer has moved on.

use dbscan::{ConcurrentSession, Params, PointCloud};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const PARAMS: Params = Params {
    eps: 0.45,
    min_pts: 3,
};
const N_READERS: usize = 4;
const N_GENERATIONS: usize = 25;

/// Deterministic coordinate stream: clusters drift along a diagonal, so
/// inserts keep changing the clustering.
struct Feed {
    state: u64,
}

impl Feed {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64: deterministic, no external crates needed.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_point(&mut self, batch: usize) -> [f64; 2] {
        let jitter = |v: u64| (v % 1000) as f64 / 1000.0 * 0.6;
        let center = batch as f64 * 0.8;
        [
            center + jitter(self.next_u64()),
            center + jitter(self.next_u64()),
        ]
    }
}

#[test]
fn readers_see_only_complete_generations_under_concurrent_updates() {
    let mut feed = Feed { state: 7 };
    let mut coords = Vec::new();
    for _ in 0..40 {
        coords.extend_from_slice(&feed.next_point(0));
    }
    let session =
        ConcurrentSession::ingest(PointCloud::new(2, coords).unwrap(), PARAMS).expect("ingest");

    let pinned = session.current();
    assert_eq!(pinned.id(), 0);
    let pinned_labels = pinned.labels().to_json();

    let done = Arc::new(AtomicBool::new(false));

    // Readers: capture every generation they observe, checking per-reader
    // monotonicity as they go.
    let mut readers = Vec::new();
    for _ in 0..N_READERS {
        let session = session.clone();
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut seen: BTreeMap<u64, Arc<dbscan::Generation>> = BTreeMap::new();
            let mut last_id = 0u64;
            let mut observations = 0u64;
            while !done.load(Ordering::SeqCst) {
                let generation = session.current();
                assert!(
                    generation.id() >= last_id,
                    "generation went backwards: {} after {last_id}",
                    generation.id()
                );
                last_id = generation.id();
                observations += 1;
                // The published labels must always be complete: one label
                // slot per point of the generation's own cloud.
                assert_eq!(generation.labels().len(), generation.num_points());
                seen.entry(generation.id())
                    .or_insert_with(|| Arc::clone(&generation));
                if observations.is_multiple_of(64) {
                    std::thread::yield_now();
                }
            }
            seen
        }));
    }

    // Writer: drifting inserts plus deletes of previously-live points.
    let mut live_ids: Vec<usize> = (0..40).collect();
    let mut published = vec![session.current()];
    for batch in 1..=N_GENERATIONS {
        let mut insert = Vec::new();
        for _ in 0..3 {
            insert.extend_from_slice(&feed.next_point(batch));
        }
        let deletes: Vec<usize> = if live_ids.len() > 8 && batch % 3 == 0 {
            let victim = feed.next_u64() as usize % live_ids.len();
            vec![live_ids.swap_remove(victim)]
        } else {
            Vec::new()
        };
        let outcome = session
            .update(&PointCloud::new(2, insert).unwrap(), &deletes)
            .expect("update");
        assert_eq!(outcome.generation, batch as u64, "publish out of order");
        live_ids.extend_from_slice(&outcome.stats.inserted_ids);
        published.push(session.current());
        // Give readers a chance to observe this generation.
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    done.store(true, Ordering::SeqCst);

    let mut seen_by_readers: BTreeMap<u64, Arc<dbscan::Generation>> = BTreeMap::new();
    for reader in readers {
        for (id, generation) in reader.join().expect("reader thread") {
            seen_by_readers.entry(id).or_insert(generation);
        }
    }
    // The writer's own captures guarantee every generation is checked even
    // if the readers were too slow to observe some of them.
    for generation in &published {
        seen_by_readers
            .entry(generation.id())
            .or_insert_with(|| Arc::clone(generation));
    }

    // Offline replay: each observed generation's labels must be
    // byte-identical to a from-scratch batch run over its own cloud.
    for (id, generation) in &seen_by_readers {
        let oracle = dbscan::cluster(generation.cloud(), PARAMS).expect("offline oracle");
        assert_eq!(
            generation.labels().to_json(),
            oracle.to_json(),
            "generation {id} labels diverge from the offline oracle"
        );
    }
    assert!(
        seen_by_readers.len() > N_GENERATIONS,
        "not every generation was captured: {}",
        seen_by_readers.len()
    );

    // The pinned ingest generation is untouched by 25 publishes and still
    // answers arbitrary-parameter queries.
    assert_eq!(pinned.labels().to_json(), pinned_labels);
    let requeried = pinned
        .cluster(Params::new(PARAMS.eps, PARAMS.min_pts))
        .expect("pinned generation queryable");
    assert_eq!(requeried.to_json(), pinned_labels);
}
