//! The dimension-erased facade must be a pure re-routing layer: for every
//! supported dimension, the labels it produces are identical to the
//! statically-typed pipeline's, and every malformed input is rejected with
//! a typed error before it can corrupt grid state.
//!
//! The label-identity property is checked on the paper's SS-simden and
//! SS-varden seed-spreader families for D ∈ {2, 3, 5, 8} (the ISSUE's
//! acceptance grid) on the batch paths — one-shot cluster, session query,
//! and sweep grid cells — and the streaming/freeze path is driven with
//! real churn at D ∈ {2, 3} (the low-dimensional regime the overlay's
//! grid-key enumeration is engineered for; see `ClusterSession::updates`).

use datagen::{seed_spreader, SeedSpreaderConfig};
use dbscan::{cluster, ClusterSession, Error, Params, PointCloud};
use geom::{flat_from_points, Point};

/// The facade labels for `cloud` must equal the static pipeline's for the
/// same parameters, along every batch path the session serves.
fn assert_facade_matches_static<const D: usize>(
    points: &[Point<D>],
    eps: f64,
    min_pts: usize,
    context: &str,
) {
    let want = pardbscan::dbscan(points, eps, min_pts).expect("static pipeline accepts the data");
    let cloud = PointCloud::new(D, flat_from_points(points)).expect("generated data is finite");
    let params = Params::new(eps, min_pts);

    // Path 1: the one-shot free function (ErasedPipeline jump table).
    let one_shot = cluster(&cloud, params).expect("facade accepts the data");
    assert_eq!(one_shot.as_clustering(), &want, "{context}: one-shot");

    // Path 2: a session query (engine snapshot underneath).
    let session = ClusterSession::ingest(cloud).expect("supported dimension");
    let queried = session.cluster(params).expect("facade accepts the params");
    assert_eq!(queried.as_clustering(), &want, "{context}: session query");

    // Path 3: a sweep containing the same parameter cell.
    let grid = session
        .sweep(([eps, eps * 1.5], [min_pts]))
        .expect("valid grid");
    assert_eq!(
        grid[0].labels.as_clustering(),
        &want,
        "{context}: sweep cell"
    );
}

/// One dimension of the acceptance grid: simden and varden at a size where
/// the test stays fast but the data has real cluster structure.
fn check_dimension<const D: usize>(n: usize, eps: f64, min_pts: usize) {
    let simden = seed_spreader::<D>(&SeedSpreaderConfig::simden(n, 0xFA));
    assert_facade_matches_static(&simden, eps, min_pts, &format!("{D}D-SS-simden"));
    let varden = seed_spreader::<D>(&SeedSpreaderConfig::varden(n, 0xFB));
    assert_facade_matches_static(&varden, eps, min_pts, &format!("{D}D-SS-varden"));
}

#[test]
fn facade_matches_static_pipeline_2d() {
    check_dimension::<2>(2_000, 1_000.0, 10);
}

#[test]
fn facade_matches_static_pipeline_3d() {
    check_dimension::<3>(2_000, 1_500.0, 10);
}

#[test]
fn facade_matches_static_pipeline_5d() {
    check_dimension::<5>(1_200, 3_000.0, 10);
}

#[test]
fn facade_matches_static_pipeline_8d() {
    check_dimension::<8>(800, 6_000.0, 10);
}

/// Streaming path with real churn: ingest, apply an insert+delete batch,
/// and compare both the live streaming labels and the frozen session's
/// answer against a from-scratch static run on the live set.
fn check_streaming_round_trip<const D: usize>(n: usize, eps: f64, min_pts: usize) {
    let points = seed_spreader::<D>(&SeedSpreaderConfig::simden(n, 0xFC));
    let cloud = PointCloud::new(D, flat_from_points(&points)).unwrap();
    let params = Params::new(eps, min_pts);
    let mut session = ClusterSession::ingest(cloud).unwrap();

    let mut updates = session.updates(params).unwrap();
    let extra = seed_spreader::<D>(&SeedSpreaderConfig::simden(n / 15, 0xFD));
    let inserts = PointCloud::new(D, flat_from_points(&extra)).unwrap();
    updates
        .apply(&inserts, &(0..n / 30).collect::<Vec<_>>())
        .unwrap();
    let streamed = updates.labels();

    // The streaming labels themselves must match a static run on the live
    // points (ascending-id order = surviving originals, then inserts).
    let mut live: Vec<Point<D>> = points[n / 30..].to_vec();
    live.extend_from_slice(&extra);
    let want = pardbscan::dbscan(&live, params.eps, params.min_pts).unwrap();
    assert_eq!(streamed.as_clustering(), &want, "{D}D streaming labels");

    // And so must the frozen snapshot's.
    updates.finish();
    let frozen = session.cluster(params).unwrap();
    assert_eq!(frozen.as_clustering(), &want, "{D}D frozen labels");
}

#[test]
fn streaming_freeze_round_trip_matches_static_2d() {
    check_streaming_round_trip::<2>(1_500, 1_000.0, 10);
}

#[test]
fn streaming_freeze_round_trip_matches_static_3d() {
    check_streaming_round_trip::<3>(900, 1_500.0, 10);
}

#[test]
fn nan_ingestion_is_rejected_before_grid_keys_are_computed() {
    // Regression test for the validation hole: `(x / side).floor() as i64`
    // silently saturates for NaN/∞, so a bad coordinate used to land in an
    // arbitrary grid cell. The facade's validators must reject it at every
    // ingest point with a typed error.
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(
            PointCloud::new(2, vec![0.0, 0.0, bad, 1.0]).unwrap_err(),
            Error::NonFiniteCoordinate {
                point: 1,
                axis: Some(0)
            },
            "flat-buffer ingest of {bad}"
        );
        let mut cloud = PointCloud::empty(3).unwrap();
        assert!(matches!(
            cloud.push(&[0.0, bad, 0.0]).unwrap_err(),
            Error::NonFiniteCoordinate { .. }
        ));
        assert!(
            matches!(
                PointCloud::from_rows(&[[0.0, 0.0], [0.5, bad]]).unwrap_err(),
                Error::NonFiniteCoordinate { .. }
            ),
            "row ingest of {bad}"
        );
    }
    // The streaming ingest point validates too.
    let cloud = PointCloud::new(2, vec![0.0, 0.0, 0.1, 0.0, 0.2, 0.0]).unwrap();
    let mut session = ClusterSession::ingest(cloud).unwrap();
    let mut updates = session.updates(Params::new(0.5, 2)).unwrap();
    assert!(matches!(
        updates.insert(&[f64::NAN, 0.0]).unwrap_err(),
        Error::NonFiniteCoordinate { .. }
    ));
    // And the parameter validator still owns the ε side of the contract.
    drop(updates);
    assert!(matches!(
        session.cluster(Params::new(f64::NAN, 2)).unwrap_err(),
        Error::InvalidParams(_)
    ));
}

#[test]
fn facade_error_paths_are_typed() {
    // Dimension mismatch between the cloud and a pushed query/update point.
    let mut cloud = PointCloud::from_rows(&[[0.0, 0.0, 0.0]]).unwrap();
    assert_eq!(
        cloud.push(&[1.0, 2.0]).unwrap_err(),
        Error::DimensionMismatch {
            expected: 3,
            got: 2
        }
    );

    // D > 8 is rejected by the jump table, not by a panic.
    let wide = PointCloud::new(9, vec![0.0; 27]).unwrap();
    assert_eq!(
        cluster(&wide, Params::new(1.0, 2)).unwrap_err(),
        Error::UnsupportedDimension(9)
    );
    assert_eq!(
        ClusterSession::ingest(wide).unwrap_err(),
        Error::UnsupportedDimension(9)
    );

    // An empty cloud with a declared dimension is valid (and clusters to
    // nothing); inferring a dimension from nothing is the error.
    assert_eq!(
        PointCloud::from_rows::<Vec<f64>>(&[]).unwrap_err(),
        Error::EmptyCloud
    );
    let empty = PointCloud::empty(4).unwrap();
    let labels = cluster(&empty, Params::new(1.0, 3)).unwrap();
    assert!(labels.is_empty());
    let session = ClusterSession::ingest(empty).unwrap();
    assert!(session.cluster(Params::new(1.0, 3)).unwrap().is_empty());
}
