//! Engine snapshot persistence on the real filesystem: `persist` writes a
//! versioned, checksummed image of the points *and* every cached spatial
//! index; `load` rehydrates it into a snapshot whose queries are
//! label-identical and whose warmed (ε, cell-method) pairs are served
//! entirely from the persisted indexes — zero partition rebuilds after a
//! process restart.

use dbscan_durable::{LoadSnapshot, PersistSnapshot};
use dbscan_engine::Engine;
use geom::Point;
use pardbscan::{CellMethod, DbscanParams, VariantConfig};
use rand::prelude::*;
use std::path::PathBuf;

fn random_points<const D: usize>(n: usize, extent: f64, rng: &mut StdRng) -> Vec<Point<D>> {
    (0..n)
        .map(|_| {
            let mut coords = [0.0; D];
            for c in coords.iter_mut() {
                *c = rng.gen_range(0.0..extent);
            }
            Point::new(coords)
        })
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("engine_snapshots");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn check_round_trip<const D: usize>(seed: u64, n: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let points = random_points::<D>(n, 3.0, &mut rng);
    let grid = [
        DbscanParams::new(0.4, 3),
        DbscanParams::new(0.7, 4),
        DbscanParams::new(0.4, 6), // same ε as the first: shares its index
    ];

    // Warm the engine: three queries populate the partition cache with the
    // two distinct ε values.
    let snapshot = Engine::new().index(points.clone());
    let originals: Vec<_> = grid
        .iter()
        .map(|&p| snapshot.query(p).unwrap().clustering)
        .collect();

    let path = tmp(&format!("round_trip_{D}d_{seed}.bin"));
    snapshot.persist(&path).unwrap();

    // A fresh engine — a restarted process — rehydrates the image.
    let engine = Engine::new();
    let loaded = engine.load::<D>(&path).unwrap();
    assert_eq!(loaded.points(), points.as_slice());
    for (&p, original) in grid.iter().zip(&originals) {
        let result = loaded.query(p).unwrap();
        assert_eq!(
            &result.clustering, original,
            "D={D} seed={seed} eps={} minPts={}: loaded labels diverged",
            p.eps, p.min_pts
        );
        assert!(
            result.stats.partition_cache_hit,
            "D={D} seed={seed} eps={}: warmed index was not rehydrated",
            p.eps
        );
    }
    // Every queried ε was served from the persisted indexes: the loaded
    // snapshot never rebuilt a partition.
    assert_eq!(loaded.cache_stats().partition_misses, 0);
}

#[test]
fn persisted_snapshots_round_trip_across_dimensions() {
    check_round_trip::<2>(11, 160);
    check_round_trip::<3>(12, 120);
    check_round_trip::<5>(13, 90);
}

#[test]
fn both_2d_cell_methods_survive_persistence() {
    let mut rng = StdRng::seed_from_u64(21);
    let points = random_points::<2>(140, 3.0, &mut rng);
    let params = DbscanParams::new(0.5, 4);
    let snapshot = Engine::new().index(points);
    // Grid and Box partitions of the same ε are distinct cache entries;
    // both must persist and rehydrate.
    let grid = snapshot
        .query_variant(params, VariantConfig::exact())
        .unwrap()
        .clustering;
    let boxed = snapshot
        .query_variant(
            params,
            VariantConfig::two_d(CellMethod::Box, pardbscan::CellGraphMethod::Bcp),
        )
        .unwrap()
        .clustering;

    let path = tmp("cell_methods.bin");
    snapshot.persist(&path).unwrap();
    let loaded = Engine::new().load::<2>(&path).unwrap();
    assert_eq!(
        loaded
            .query_variant(params, VariantConfig::exact())
            .unwrap()
            .clustering,
        grid
    );
    assert_eq!(
        loaded
            .query_variant(
                params,
                VariantConfig::two_d(CellMethod::Box, pardbscan::CellGraphMethod::Bcp),
            )
            .unwrap()
            .clustering,
        boxed
    );
    assert_eq!(loaded.cache_stats().partition_misses, 0);
}

#[test]
fn persist_overwrites_atomically_and_missing_files_are_io_errors() {
    let mut rng = StdRng::seed_from_u64(31);
    let path = tmp("overwrite.bin");

    // First image: 60 points.
    let first = Engine::new().index(random_points::<2>(60, 3.0, &mut rng));
    first.persist(&path).unwrap();
    // Second image over the same path: 90 points. The replace is atomic
    // (write to a temporary, rename over), so the path always holds one
    // complete image.
    let second = Engine::new().index(random_points::<2>(90, 3.0, &mut rng));
    second.persist(&path).unwrap();

    let loaded = Engine::new().load::<2>(&path).unwrap();
    assert_eq!(loaded.num_points(), 90);
    assert_eq!(loaded.points(), second.points());

    let missing = tmp("does_not_exist.bin");
    assert!(matches!(
        Engine::new().load::<2>(&missing),
        Err(dbscan_durable::DurableError::Io(_))
    ));
}

#[test]
fn wrong_dimension_load_is_a_typed_error() {
    let mut rng = StdRng::seed_from_u64(41);
    let path = tmp("dim_mismatch.bin");
    let snapshot = Engine::new().index(random_points::<3>(50, 3.0, &mut rng));
    snapshot.persist(&path).unwrap();
    // Loading a 3-dimensional image as 2-dimensional must fail with a
    // typed corruption error naming the mismatch, not misread the floats.
    assert!(matches!(
        Engine::new().load::<2>(&path),
        Err(dbscan_durable::DurableError::Corrupt { .. })
    ));
}
