//! Invariant tests for the per-operation EXPLAIN reports
//! ([`ClusterSession::explain_last`]): phase skip flags agree with the
//! engine's `QueryStats` cache flags, per-phase durations sum to at most the
//! operation's wall time, and counter deltas do not bleed between
//! back-to-back scoped operations.
//!
//! Own-process integration binary (same pattern as `obs_trace.rs`): the
//! `DBSCAN_OBS` mode is read once per process, so the variable must be set
//! before the first instrumented call. Keep this file single-test.

use dbscan::{ClusterSession, Params, PointCloud, VariantConfig};
use std::time::Duration;

#[test]
fn explain_reports_track_cache_flags_timings_and_counters() {
    std::env::set_var("DBSCAN_OBS", "counters");
    assert_eq!(obs::mode(), obs::ObsMode::Counters);

    let rows: Vec<[f64; 2]> = (0..600)
        .map(|i| [0.05 * (i % 100) as f64, 0.02 * (i / 100) as f64])
        .collect();
    let mut session = ClusterSession::ingest(PointCloud::from_rows(&rows).unwrap()).unwrap();
    let params = Params::new(0.2, 3);

    assert!(
        session.explain_last().is_none(),
        "no report before the first operation"
    );

    // --- Fresh query: every phase executed, and the report mirrors the
    // engine's QueryStats.
    let outcome = session.query(params, VariantConfig::exact()).unwrap();
    let report = session.explain_last().expect("query stores a report");
    assert_eq!(report.op, "query");
    assert_eq!(report.variant, outcome.stats.variant);
    assert_eq!(report.eps, params.eps);
    assert_eq!(report.min_pts, params.min_pts);
    assert_eq!(report.n, rows.len());
    assert_eq!(report.cells_visited, outcome.stats.num_cells);
    assert_eq!(report.num_core_points, outcome.stats.num_core_points);

    assert!(!outcome.stats.partition_cache_hit);
    assert!(!outcome.stats.core_cache_hit);
    for name in [
        obs::phase::PARTITION,
        obs::phase::MARK_CORE,
        obs::phase::CLUSTER_CORE,
        obs::phase::CLUSTER_BORDER,
    ] {
        let phase = report.phase(name).expect("query reports all four phases");
        assert!(phase.executed(), "fresh query must run {name}");
        assert!(!phase.cache_skipped());
    }

    // Per-phase durations sum to at most the scope's wall time (the phases
    // run sequentially inside the operation).
    let phase_sum: Duration = report.phases.iter().map(|p| p.duration).sum();
    assert!(
        phase_sum <= report.wall,
        "phase durations ({phase_sum:?}) exceed the operation wall time ({:?})",
        report.wall
    );
    assert!(report.parallel_efficiency > 0.0);
    assert!(report.parallel_efficiency.is_finite());

    // Counters mode: the fresh query's misses are visible as deltas.
    assert_eq!(report.delta("dbscan_partition_cache_misses_total"), 1);
    assert_eq!(report.delta("dbscan_core_cache_misses_total"), 1);
    assert!(
        report.spans.is_empty(),
        "spans attach only under DBSCAN_OBS=trace"
    );

    // --- Repeat query: the cached phases report SKIP, tagged with the
    // generation of the reused index, and the counter deltas cover only this
    // operation (no bleed from the first query's misses).
    let outcome2 = session.query(params, VariantConfig::exact()).unwrap();
    let report2 = session.explain_last().unwrap();
    assert!(outcome2.stats.partition_cache_hit);
    assert!(outcome2.stats.core_cache_hit);
    for name in [obs::phase::PARTITION, obs::phase::MARK_CORE] {
        let phase = report2.phase(name).unwrap();
        assert!(phase.cache_skipped(), "repeat query must skip {name}");
        assert_eq!(
            phase.skipped_by_generation,
            Some(outcome2.stats.index_generation),
            "the skip names the generation of the reused artifact"
        );
    }
    assert!(report2.phase(obs::phase::CLUSTER_CORE).unwrap().executed());
    assert!(report2
        .phase(obs::phase::CLUSTER_BORDER)
        .unwrap()
        .executed());
    assert_eq!(
        report2.delta("dbscan_partition_cache_misses_total"),
        0,
        "the first query's miss must not bleed into the second scope"
    );
    assert_eq!(report2.delta("dbscan_partition_cache_hits_total"), 1);
    assert_eq!(report2.delta("dbscan_core_cache_hits_total"), 1);

    // The Display rendering names the skipped phases.
    let rendered = format!("{report2}");
    assert!(rendered.contains("EXPLAIN"), "{rendered}");
    assert!(rendered.contains("SKIP"), "{rendered}");

    // --- Sweep: one aggregated report for the whole grid.
    let eps_grid = [0.2, 0.3];
    let min_pts_grid = [3, 5];
    let grid = session.sweep((&eps_grid, &min_pts_grid)).unwrap();
    assert_eq!(grid.len(), 4);
    let sweep_report = session.explain_last().unwrap();
    assert_eq!(sweep_report.op, "sweep");
    assert_eq!(sweep_report.n, rows.len() * grid.len());
    let partition = sweep_report.phase(obs::phase::PARTITION).unwrap();
    assert_eq!(
        partition.runs + partition.skips,
        grid.len(),
        "every sweep cell accounts for its partition phase"
    );
    assert!(
        partition.skips >= 1,
        "ε=0.2 was cached by the earlier queries"
    );
    let sweep_phase_sum: Duration = sweep_report.phases.iter().map(|p| p.duration).sum();
    assert!(sweep_phase_sum <= sweep_report.wall);

    // --- Streaming apply: the report covers the incremental phases.
    let mut updates = session.updates(params).unwrap();
    let id = updates.insert(&[0.025, 0.01]).unwrap();
    assert!(updates.live_ids().contains(&id));
    drop(updates);
    let apply_report = session.explain_last().unwrap();
    assert_eq!(apply_report.op, "apply");
    assert_eq!(apply_report.n, 1);
    assert!(apply_report
        .phase(obs::phase::MARK_CORE_REGION)
        .unwrap()
        .executed());
    assert!(apply_report
        .phase(obs::phase::CONNECT_REGION)
        .unwrap()
        .executed());
    assert!(apply_report.cells_visited > 0);
    let apply_phase_sum: Duration = apply_report.phases.iter().map(|p| p.duration).sum();
    assert!(apply_phase_sum <= apply_report.wall);
}
