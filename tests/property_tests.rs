//! Property-based tests (proptest): on arbitrary small point sets, the
//! parallel exact DBSCAN must equal the brute-force reference, and the
//! clustering must satisfy the DBSCAN axioms directly.

use baselines::brute_force_dbscan;
use geom::{Point, Point2};
use pardbscan::{CellGraphMethod, CellMethod, Clustering, Dbscan};
use proptest::prelude::*;

fn to_clustering(b: &baselines::BaselineClustering) -> Clustering {
    Clustering::from_raw(b.core.clone(), b.clusters.clone())
}

/// Checks the DBSCAN definition (§2 of the paper) directly on a clustering.
fn check_dbscan_axioms<const D: usize>(
    points: &[Point<D>],
    eps: f64,
    min_pts: usize,
    c: &Clustering,
) {
    let n = points.len();
    // 1. Core flags are exactly the |N_eps(p)| >= minPts points.
    for i in 0..n {
        let count = points.iter().filter(|q| points[i].within(q, eps)).count();
        assert_eq!(c.is_core(i), count >= min_pts, "core flag of point {i}");
    }
    // 2. Core points have exactly one cluster; two core points within eps
    //    share it.
    for i in 0..n {
        if c.is_core(i) {
            assert_eq!(c.clusters_of(i).len(), 1);
        }
        for j in 0..n {
            if c.is_core(i) && c.is_core(j) && points[i].within(&points[j], eps) {
                assert_eq!(c.clusters_of(i)[0], c.clusters_of(j)[0]);
            }
        }
    }
    // 3. A non-core point belongs to exactly the clusters of core points
    //    within eps of it (noise = none).
    for i in 0..n {
        if c.is_core(i) {
            continue;
        }
        let mut expected: Vec<usize> = (0..n)
            .filter(|&j| c.is_core(j) && points[i].within(&points[j], eps))
            .map(|j| c.clusters_of(j)[0])
            .collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(
            c.clusters_of(i),
            &expected[..],
            "memberships of non-core point {i}"
        );
    }
}

fn arb_points_2d(max_n: usize, extent: f64) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((0.0..extent, 0.0..extent), 0..max_n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point2::new([x, y])).collect())
}

fn arb_points_3d(max_n: usize, extent: f64) -> impl Strategy<Value = Vec<Point<3>>> {
    prop::collection::vec((0.0..extent, 0.0..extent, 0.0..extent), 0..max_n).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, z)| Point::new([x, y, z]))
            .collect()
    })
}

/// The CSR `NeighborGraph` of a grid `SpatialIndex` must be *set-equal*,
/// cell by cell, to the brute-force ε-box adjacency (cells whose boxes are
/// within ε of each other). In 2D the graph comes from the grid-key
/// enumeration, in 3D from the k-d tree over cells — both must agree with
/// the quadratic reference.
fn check_csr_neighbors_match_bruteforce<const D: usize>(pts: &[Point<D>], eps: f64) {
    let index = pardbscan::SpatialIndex::build(pts, eps, pardbscan::CellMethod::Grid).unwrap();
    let cells = &index.partition.cells;
    let cutoff = eps * eps * (1.0 + 1e-9);
    for c in 0..index.num_cells() {
        let mut want: Vec<usize> = (0..index.num_cells())
            .filter(|&o| o != c && cells[c].bbox.dist_sq_to_box(&cells[o].bbox) <= cutoff)
            .collect();
        want.sort_unstable();
        let mut got: Vec<usize> = index.neighbors.of(c).to_vec();
        got.sort_unstable();
        assert_eq!(got, want, "neighbour set of cell {c} (D = {D})");
    }
    // The CSR structure itself is consistent: degrees sum to the edge count
    // and every `graph[c]` slice indexing path agrees with `of(c)`.
    let total: usize = (0..index.num_cells())
        .map(|c| index.neighbors.degree(c))
        .sum();
    assert_eq!(total, index.neighbors.num_edges());
    for c in 0..index.num_cells() {
        assert_eq!(&index.neighbors[c], index.neighbors.of(c));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_2d_matches_bruteforce(
        pts in arb_points_2d(120, 10.0),
        eps in 0.3f64..3.0,
        min_pts in 1usize..8,
    ) {
        let want = to_clustering(&brute_force_dbscan(&pts, eps, min_pts));
        let got = Dbscan::exact(&pts, eps, min_pts).run().unwrap();
        prop_assert_eq!(&got, &want);
        check_dbscan_axioms(&pts, eps, min_pts, &got);
    }

    #[test]
    fn exact_2d_box_usec_matches_bruteforce(
        pts in arb_points_2d(100, 8.0),
        eps in 0.3f64..2.5,
        min_pts in 1usize..6,
    ) {
        let want = to_clustering(&brute_force_dbscan(&pts, eps, min_pts));
        let got = Dbscan::exact(&pts, eps, min_pts)
            .cell_method(CellMethod::Box)
            .cell_graph(CellGraphMethod::Usec)
            .run()
            .unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn exact_2d_delaunay_matches_bruteforce(
        pts in arb_points_2d(90, 8.0),
        eps in 0.3f64..2.5,
        min_pts in 1usize..6,
    ) {
        let want = to_clustering(&brute_force_dbscan(&pts, eps, min_pts));
        let got = Dbscan::exact(&pts, eps, min_pts)
            .cell_graph(CellGraphMethod::Delaunay)
            .run()
            .unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn exact_3d_matches_bruteforce(
        pts in arb_points_3d(100, 6.0),
        eps in 0.4f64..2.0,
        min_pts in 1usize..6,
    ) {
        let want = to_clustering(&brute_force_dbscan(&pts, eps, min_pts));
        let got = Dbscan::exact(&pts, eps, min_pts).run().unwrap();
        prop_assert_eq!(&got, &want);
        let got_qt = Dbscan::exact(&pts, eps, min_pts)
            .mark_core(pardbscan::MarkCoreMethod::QuadTree)
            .cell_graph(CellGraphMethod::QuadTreeBcp)
            .run()
            .unwrap();
        prop_assert_eq!(&got_qt, &want);
    }

    #[test]
    fn approximate_core_flags_are_exact_and_clusters_cover_exact_ones(
        pts in arb_points_3d(80, 5.0),
        eps in 0.4f64..1.5,
        min_pts in 1usize..5,
        rho in 0.01f64..0.5,
    ) {
        let exact = Dbscan::exact(&pts, eps, min_pts).run().unwrap();
        let approx = Dbscan::exact(&pts, eps, min_pts).approximate(rho).run().unwrap();
        prop_assert_eq!(approx.core_flags(), exact.core_flags());
        // Each exact cluster must be contained in a single approximate cluster.
        let mut map = std::collections::HashMap::new();
        for i in 0..pts.len() {
            if !exact.is_core(i) {
                continue;
            }
            let e = exact.clusters_of(i)[0];
            let a = approx.clusters_of(i)[0];
            let entry = map.entry(e).or_insert(a);
            prop_assert_eq!(*entry, a);
        }
    }

    #[test]
    fn csr_neighbor_graph_is_set_equal_to_bruteforce_2d(
        pts in arb_points_2d(150, 12.0),
        eps in 0.3f64..3.0,
    ) {
        check_csr_neighbors_match_bruteforce(&pts, eps);
    }

    #[test]
    fn csr_neighbor_graph_is_set_equal_to_bruteforce_3d(
        pts in arb_points_3d(120, 8.0),
        eps in 0.4f64..2.5,
    ) {
        check_csr_neighbors_match_bruteforce(&pts, eps);
    }

    #[test]
    fn duplicated_points_do_not_change_number_of_clusters_much(
        pts in arb_points_2d(60, 6.0),
        eps in 0.5f64..2.0,
        min_pts in 1usize..5,
    ) {
        // Duplicating every point can only turn noise/border into core —
        // clusters can merge but points can never *lose* cluster membership.
        let base = Dbscan::exact(&pts, eps, min_pts).run().unwrap();
        let mut doubled = pts.clone();
        doubled.extend(pts.iter().copied());
        let doubled_run = Dbscan::exact(&doubled, eps, min_pts).run().unwrap();
        for i in 0..pts.len() {
            if !base.is_noise(i) {
                prop_assert!(!doubled_run.is_noise(i),
                    "point {} lost cluster membership after duplication", i);
            }
            if base.is_core(i) {
                prop_assert!(doubled_run.is_core(i));
            }
        }
    }
}
