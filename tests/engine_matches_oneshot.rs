//! Property test: every clustering the engine serves — through
//! `Snapshot::query`, `Snapshot::query_variant`, or `Snapshot::sweep` — must
//! be label-identical to a fresh one-shot `dbscan()` / `Dbscan::run()` with
//! the same parameters. Caching may change *where* phase inputs come from,
//! never *what* the clustering contains.
//!
//! Random point sets are drawn across dimensions (2, 3, 5), densities and
//! parameter grids; variant configs cover the cell methods, MarkCore
//! methods, cell-graph methods, bucketing and ρ-approximation (exact
//! variants only are compared for label identity — the approximate
//! algorithm is free to vary between runs, so it is checked for core-flag
//! identity and engine-internal consistency instead).

use dbscan_engine::Engine;
use geom::Point;
use pardbscan::{CellGraphMethod, CellMethod, Dbscan, DbscanParams, MarkCoreMethod, VariantConfig};
use rand::prelude::*;

fn random_points<const D: usize>(n: usize, extent: f64, rng: &mut StdRng) -> Vec<Point<D>> {
    (0..n)
        .map(|_| {
            let mut coords = [0.0; D];
            for c in coords.iter_mut() {
                *c = rng.gen_range(0.0..extent);
            }
            Point::new(coords)
        })
        .collect()
}

/// Exact variants valid in any dimension.
fn exact_variants_any_dim() -> Vec<VariantConfig> {
    vec![
        VariantConfig::exact(),
        VariantConfig::exact().with_bucketing(true),
        VariantConfig::exact_qt(),
        VariantConfig::exact_qt().with_bucketing(true),
    ]
}

/// The additional exact variants only valid in 2D.
fn exact_variants_2d_only() -> Vec<VariantConfig> {
    let mut variants = Vec::new();
    for cell in [CellMethod::Grid, CellMethod::Box] {
        for graph in [
            CellGraphMethod::Bcp,
            CellGraphMethod::Usec,
            CellGraphMethod::Delaunay,
        ] {
            variants.push(VariantConfig::two_d(cell, graph));
        }
    }
    variants
}

fn check_engine_matches_oneshot<const D: usize>(
    points: &[Point<D>],
    params_grid: &[(f64, usize)],
    variants: &[VariantConfig],
) {
    let snapshot = Engine::new().index(points.to_vec());
    for &(eps, min_pts) in params_grid {
        let params = DbscanParams::new(eps, min_pts);
        for &variant in variants {
            let engine_result = snapshot.query_variant(params, variant).unwrap();
            let oneshot = Dbscan::new(points, params).variant(variant).run().unwrap();
            assert_eq!(
                engine_result.clustering,
                oneshot,
                "engine vs one-shot mismatch: D={D}, eps={eps}, minPts={min_pts}, \
                 variant={}, n={}",
                variant.paper_name(),
                points.len()
            );
        }
    }
}

#[test]
fn engine_query_matches_oneshot_across_dims_and_variants() {
    let mut rng = StdRng::seed_from_u64(0xE1);
    for case in 0..12 {
        let n = rng.gen_range(0..220);
        let extent = rng.gen_range(2.0..14.0);
        let eps_a = rng.gen_range(0.3..1.2);
        let eps_b = rng.gen_range(1.2..3.0);
        let grid = [
            (eps_a, rng.gen_range(1..6)),
            (eps_a, rng.gen_range(6..14)),
            (eps_b, rng.gen_range(1..6)),
        ];
        match case % 3 {
            0 => {
                let pts = random_points::<2>(n, extent, &mut rng);
                let mut variants = exact_variants_any_dim();
                variants.extend(exact_variants_2d_only());
                check_engine_matches_oneshot(&pts, &grid, &variants);
            }
            1 => {
                let pts = random_points::<3>(n, extent, &mut rng);
                check_engine_matches_oneshot(&pts, &grid, &exact_variants_any_dim());
            }
            _ => {
                let pts = random_points::<5>(n, extent, &mut rng);
                check_engine_matches_oneshot(&pts, &grid, &exact_variants_any_dim());
            }
        }
    }
}

#[test]
fn engine_sweep_matches_oneshot_and_reuses_partitions() {
    let mut rng = StdRng::seed_from_u64(0xE2);
    let pts = random_points::<2>(400, 12.0, &mut rng);
    let snapshot = Engine::new().index(pts.clone());

    // A 5 × 2 grid: ten queries over five distinct ε values.
    let eps_grid = [0.5, 0.8, 1.1, 1.4, 1.7];
    let min_pts_grid = [3, 7];
    let grid = snapshot.sweep((&eps_grid, &min_pts_grid)).unwrap();
    assert_eq!(grid.len(), eps_grid.len() * min_pts_grid.len());

    for cell in &grid {
        let oneshot = pardbscan::dbscan(&pts, cell.eps, cell.min_pts).unwrap();
        assert_eq!(
            cell.clustering, oneshot,
            "sweep vs one-shot mismatch at eps={}, minPts={}",
            cell.eps, cell.min_pts
        );
    }

    // Acceptance criterion: a 10-query eps sweep performs strictly fewer
    // partition builds than 10 one-shot runs would (one per query).
    let stats = snapshot.cache_stats();
    assert_eq!(
        stats.partition_misses,
        eps_grid.len(),
        "one build per distinct eps"
    );
    assert!(
        stats.partition_misses < grid.len(),
        "sweep must build strictly fewer partitions ({}) than queries ({})",
        stats.partition_misses,
        grid.len()
    );
    // Counters track logical queries: every sweep cell either built its
    // column's partition or reused it.
    assert_eq!(stats.partition_hits + stats.partition_misses, grid.len());

    // Re-running the same sweep hits the partition cache for every query.
    let again = snapshot.sweep((&eps_grid, &min_pts_grid)).unwrap();
    assert_eq!(again.len(), grid.len());
    let stats = snapshot.cache_stats();
    assert_eq!(
        stats.partition_misses,
        eps_grid.len(),
        "no partitions rebuilt"
    );
    assert_eq!(stats.partition_hits, 2 * grid.len() - eps_grid.len());
    assert!(again
        .iter()
        .all(|c| c.stats.partition_cache_hit && c.stats.core_cache_hit));
}

#[test]
fn engine_approximate_queries_are_internally_consistent() {
    // The ρ-approximate algorithm may legitimately differ run-to-run in
    // which (ε, ε(1+ρ)] edges it keeps, so label identity with a one-shot
    // run is not required. Core flags are exact in both, and an engine query
    // must agree with the one-shot run on them.
    let mut rng = StdRng::seed_from_u64(0xE3);
    let pts = random_points::<3>(300, 6.0, &mut rng);
    let snapshot = Engine::new().index(pts.clone());
    for (eps, min_pts, rho) in [(0.8, 4, 0.01), (1.2, 6, 0.1), (0.8, 4, 0.5)] {
        let params = DbscanParams::new(eps, min_pts);
        for variant in [VariantConfig::approx(rho), VariantConfig::approx_qt(rho)] {
            let engine_result = snapshot.query_variant(params, variant).unwrap();
            let oneshot = Dbscan::new(&pts, params).variant(variant).run().unwrap();
            assert_eq!(
                engine_result.clustering.core_flags(),
                oneshot.core_flags(),
                "approximate core flags must be exact: {}",
                variant.paper_name()
            );
            // Exact-eps connectivity is a lower bound for any valid
            // approximate clustering: two core points within eps of each
            // other must share a cluster.
            let exact = snapshot.query(params).unwrap().clustering;
            for i in 0..pts.len() {
                if exact.is_core(i) {
                    assert!(!engine_result.clustering.is_noise(i));
                }
            }
        }
    }
}

#[test]
fn engine_mark_core_method_sharing_does_not_change_labels() {
    // Same (eps, minPts) queried first with Scan then with QuadTree MarkCore:
    // the second reuses the first's core set; the clustering must equal a
    // from-scratch QuadTree run.
    let mut rng = StdRng::seed_from_u64(0xE4);
    let pts = random_points::<2>(350, 10.0, &mut rng);
    let snapshot = Engine::new().index(pts.clone());
    let params = DbscanParams::new(0.9, 5);

    let scan = snapshot
        .query_variant(params, VariantConfig::exact())
        .unwrap();
    assert!(!scan.stats.core_cache_hit);
    let qt = snapshot
        .query_variant(params, VariantConfig::exact_qt())
        .unwrap();
    assert!(
        qt.stats.core_cache_hit,
        "same (eps, minPts) must reuse MarkCore state"
    );

    let oneshot_qt = Dbscan::new(&pts, params)
        .mark_core(MarkCoreMethod::QuadTree)
        .cell_graph(CellGraphMethod::QuadTreeBcp)
        .run()
        .unwrap();
    assert_eq!(qt.clustering, oneshot_qt);
    assert_eq!(scan.clustering, qt.clustering);
}
