//! Regression test for `DBSCAN_OBS=off`: the kill switch must mean *zero*
//! recorded observability state — no spans, an empty registry — while the
//! per-session statistics views keep working.
//!
//! This lives in its own integration-test binary on purpose (same pattern
//! as `force_scalar.rs` in the core crate): the mode is read once per
//! process at the first instrumented call, so the test must own the whole
//! process to set the variable *before* that first call. Keep this file
//! single-test for the same reason.

use dbscan::{ClusterSession, Params, PointCloud};

#[test]
fn obs_off_records_no_spans_and_no_metrics() {
    std::env::set_var("DBSCAN_OBS", "off");
    assert_eq!(obs::mode(), obs::ObsMode::Off);

    // Exercise every instrumented layer: facade dispatch, engine query and
    // sweep, the core phases underneath, and a streaming episode.
    let rows: Vec<[f64; 2]> = (0..200).map(|i| [0.05 * (i % 50) as f64, 0.0]).collect();
    let mut session = ClusterSession::ingest(PointCloud::from_rows(&rows).unwrap()).unwrap();
    let params = Params::new(0.2, 3);
    let labels = session.cluster(params).unwrap();
    assert_eq!(labels.num_clusters(), 1);
    session.sweep(([0.2, 0.4], [3, 5])).unwrap();
    // The per-session views are independent of the observability mode.
    // (Captured before the streaming episode: freezing back re-indexes the
    // snapshot, which resets the session's cache counters.)
    assert!(session.cache_stats().partition_misses > 0);
    {
        let mut updates = session.updates(params).unwrap();
        let id = updates.insert(&[30.0, 30.0]).unwrap();
        updates.delete(id).unwrap();
    }

    // No spans were recorded anywhere...
    assert_eq!(obs::trace_len(), 0);
    assert_eq!(obs::trace_dropped(), 0);
    assert!(session.take_trace().is_empty());

    // ...and nothing ever registered a metric, so the report (and its
    // Prometheus rendering) is empty.
    let report = session.metrics();
    assert!(
        report.counters.is_empty(),
        "counters: {:?}",
        report.counters
    );
    assert!(report.gauges.is_empty(), "gauges: {:?}", report.gauges);
    assert!(report.histograms.is_empty());
    assert!(report.infos.is_empty(), "infos: {:?}", report.infos);
    assert!(report.to_prometheus().is_empty());

    // The decision is sticky: changing the variable mid-process must not
    // re-dispatch.
    std::env::set_var("DBSCAN_OBS", "trace");
    session.cluster(params).unwrap();
    assert_eq!(obs::mode(), obs::ObsMode::Off);
    assert!(session.take_trace().is_empty());
}
