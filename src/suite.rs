//! Workspace-level integration test suite.
//!
//! This crate has no library code of its own; it exists so that the
//! cross-crate integration tests in `tests/` (brute-force equivalence,
//! DBSCAN axioms, approximate-guarantee sandwiching, engine/one-shot
//! label-identity) have a package to live in. See the workspace `README.md`
//! for the crate map.
